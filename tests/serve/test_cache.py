"""Unit tests for the bounded LRU result cache."""

import pytest

from repro.serve.cache import MISS, ResultCache


class TestBasics:
    def test_miss_then_hit(self):
        cache = ResultCache(4)
        assert cache.get("a") is MISS
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert (cache.hits, cache.misses) == (1, 1)

    def test_miss_sentinel_distinct_from_cached_none(self):
        cache = ResultCache(4)
        cache.put("a", None)
        assert cache.get("a") is None
        assert cache.get("b") is MISS

    def test_contains_and_len(self):
        cache = ResultCache(4)
        cache.put("a", 1)
        assert "a" in cache and "b" not in cache
        assert len(cache) == 1

    def test_rejects_negative_size(self):
        with pytest.raises(ValueError, match="maxsize"):
            ResultCache(-1)


class TestEviction:
    def test_lru_order(self):
        cache = ResultCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a; b is now least recent
        cache.put("c", 3)
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.evictions == 1

    def test_put_refreshes_existing(self):
        cache = ResultCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh, not insert
        cache.put("c", 3)
        assert cache.get("a") == 10 and "b" not in cache

    def test_zero_size_disables(self):
        cache = ResultCache(0)
        cache.put("a", 1)
        assert len(cache) == 0
        assert cache.get("a") is MISS
        assert cache.evictions == 0


class TestStats:
    def test_hit_rate(self):
        cache = ResultCache(4)
        assert cache.hit_rate == 0.0
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        assert cache.hit_rate == 0.5

    def test_stats_dict(self):
        cache = ResultCache(4)
        cache.put("a", 1)
        cache.get("a")
        stats = cache.stats()
        assert stats["size"] == 1
        assert stats["maxsize"] == 4
        assert stats["hits"] == 1
        assert stats["hit_rate"] == 1.0

    def test_clear_keeps_counters(self):
        cache = ResultCache(4)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0 and cache.hits == 1
