"""Tests for the asyncio front-end: framing, coalescing, admission
control and graceful drain."""

import asyncio
import json

import pytest

from repro.serve.aserver import AsyncMatchServer, LineFramer
from repro.serve.service import MatchService

WORDS = ["smith", "smyth", "jones", "stone", "jonas"]


class TestLineFramer:
    def feed_all(self, framer, data):
        return list(framer.feed(data))

    def test_lines_across_feeds(self):
        f = LineFramer()
        assert self.feed_all(f, b"ab") == []
        assert self.feed_all(f, b"c\nde\nf") == [b"abc", b"de"]
        assert self.feed_all(f, b"\n") == [b"f"]

    def test_oversized_line_yields_sentinel_once(self):
        f = LineFramer(max_line_bytes=8)
        out = self.feed_all(f, b"x" * 20)
        assert out == []
        out = self.feed_all(f, b"yyy\nnext\n")
        assert out == [LineFramer.OVERSIZED, b"next"]

    def test_oversized_within_one_feed(self):
        f = LineFramer(max_line_bytes=4)
        out = self.feed_all(f, b"toolong\nok\n")
        assert out == [LineFramer.OVERSIZED, b"ok"]

    def test_bounded_memory_while_discarding(self):
        f = LineFramer(max_line_bytes=8)
        for _ in range(100):
            self.feed_all(f, b"z" * 1024)
        assert len(f._buf) == 0

    def test_exact_bound_is_allowed(self):
        f = LineFramer(max_line_bytes=4)
        assert self.feed_all(f, b"abcd\n") == [b"abcd"]


async def _client(port, requests):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    responses = []
    for request in requests:
        payload = (
            request
            if isinstance(request, (bytes, bytearray))
            else json.dumps(request).encode()
        )
        writer.write(payload + b"\n")
        await writer.drain()
        responses.append(json.loads(await reader.readline()))
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionResetError, BrokenPipeError):
        pass
    return responses


def run(coro):
    return asyncio.run(coro)


class TestAsyncServer:
    def test_queries_coalesce_across_connections(self):
        async def main():
            svc = MatchService(WORDS, k=1, cache_size=0)
            server = AsyncMatchServer(svc, batch_window=0.02)
            _, port = await server.start()
            answers = await asyncio.gather(
                *(
                    _client(port, [{"op": "query", "value": v}])
                    for v in ("smith", "smyth", "jones", "stone")
                )
            )
            await server.aclose()
            return server, [a[0] for a in answers]

        server, answers = run(main())
        for res in answers:
            assert res["ok"] and res["ids"], res
        # All four landed inside one window -> coalesced together.
        assert server.coalesced == 4
        # Answers equal the blocking path's.
        svc = MatchService(WORDS, k=1, cache_size=0)
        for res in answers:
            assert res["ids"] == list(svc.query(res["value"]).ids)

    def test_per_connection_order_is_preserved(self):
        async def main():
            svc = MatchService(WORDS, k=1)
            server = AsyncMatchServer(svc)
            _, port = await server.start()
            res = await _client(
                port,
                [
                    {"op": "add", "value": "smitt"},
                    {"op": "query", "value": "smitt", "k": 0},
                    {"op": "remove", "id": len(WORDS)},
                    {"op": "query", "value": "smitt", "k": 0},
                ],
            )
            await server.aclose()
            return res

        add, q1, rm, q2 = run(main())
        assert add["ok"] and rm["ok"]
        assert q1["ids"] == [len(WORDS)]  # sees its own add
        assert q2["ids"] == []  # and its own remove

    def test_shed_on_overload(self):
        async def main():
            svc = MatchService(WORDS, k=1)
            # A window long enough that parked queries hold their
            # admission slots while the probe arrives.
            server = AsyncMatchServer(
                svc, max_inflight=2, batch_window=0.2, max_batch=100
            )
            _, port = await server.start()
            parked = [
                asyncio.create_task(
                    _client(port, [{"op": "query", "value": v}])
                )
                for v in ("smith", "smyth")
            ]
            await asyncio.sleep(0.05)  # both admitted, batch pending
            probe = await _client(port, [{"op": "stats"}])
            done = await asyncio.gather(*parked)
            await server.aclose()
            return server, probe[0], [d[0] for d in done]

        server, shed, parked = run(main())
        assert shed == {"ok": False, "error": "overloaded", "shed": True}
        assert server.shed == 1
        for res in parked:  # admitted work still answered
            assert res["ok"], res
        snap = server.service.metrics_snapshot()["metrics"]
        assert snap["serve_shed_total"]["value"] == 1.0
        assert (
            snap['serve_bad_requests_total{reason="overloaded"}']["value"]
            == 1.0
        )

    def test_oversized_request_keeps_connection_alive(self):
        async def main():
            svc = MatchService(WORDS, k=1)
            server = AsyncMatchServer(svc, max_request_bytes=256)
            _, port = await server.start()
            res = await _client(
                port,
                [b"x" * 1024, {"op": "stats"}],
            )
            await server.aclose()
            return svc, res

        svc, (oversized, stats) = run(main())
        assert not oversized["ok"] and "exceeds" in oversized["error"]
        assert stats["ok"] and stats["op"] == "stats"
        snap = svc.metrics_snapshot()["metrics"]
        assert (
            snap['serve_bad_requests_total{reason="oversized"}']["value"]
            == 1.0
        )

    def test_shutdown_drains_and_reports_totals(self):
        async def main():
            svc = MatchService(WORDS, k=1, shards=2)
            server = AsyncMatchServer(svc, batch_window=0.05)
            _, port = await server.start()
            # A query parked in the coalescing window when shutdown
            # arrives must still be answered (drain, not drop).
            parked = asyncio.create_task(
                _client(port, [{"op": "query", "value": "smith"}])
            )
            await asyncio.sleep(0.01)
            ack = (await _client(port, [{"op": "shutdown"}]))[0]
            parked_res = (await parked)[0]
            await server.serve_until_shutdown()
            return ack, parked_res

        ack, parked = run(main())
        assert ack["ok"] and ack["shutdown"]
        assert {"served", "errors", "shed"} <= set(ack)
        assert parked["ok"] and parked["ids"]

    def test_rejects_after_shutdown_starts(self):
        async def main():
            svc = MatchService(WORDS, k=1)
            server = AsyncMatchServer(svc)
            _, port = await server.start()
            await _client(port, [{"op": "shutdown"}])
            await server.serve_until_shutdown()
            with pytest.raises(OSError):
                await _client(port, [{"op": "stats"}])

        run(main())

    def test_bad_json_and_non_object_counted(self):
        async def main():
            svc = MatchService(WORDS, k=1)
            server = AsyncMatchServer(svc)
            _, port = await server.start()
            res = await _client(port, [b"{not json", b"[1, 2]"])
            await server.aclose()
            return svc, res

        svc, (bad, arr) = run(main())
        assert not bad["ok"] and "bad json" in bad["error"]
        assert not arr["ok"] and "object" in arr["error"]
        snap = svc.metrics_snapshot()["metrics"]
        assert (
            snap['serve_bad_requests_total{reason="bad_json"}']["value"]
            == 1.0
        )

    def test_invalid_max_inflight_rejected(self):
        with pytest.raises(ValueError, match="max_inflight"):
            AsyncMatchServer(MatchService(WORDS), max_inflight=0)
