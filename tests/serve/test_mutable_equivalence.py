"""Stateful property tests: a mutated index equals a rebuilt one.

The serve layer's correctness contract is *rebuild equivalence*: after
any interleaving of adds, removes, compactions and snapshot
round-trips, a :class:`MutableIndex` must answer every query exactly
like a fresh :class:`FBFIndex` built from scratch over the live
entries.  Hypothesis drives random interleavings against a plain-dict
model; queries are checked on every step that asks for them.

A tight alphabet and short strings keep the population collision-heavy
so queries actually hit (near-)matches instead of empty windows.
"""

import shutil
import tempfile

import hypothesis.strategies as st
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.core.index import FBFIndex
from repro.serve.mutable import MutableIndex
from repro.serve.service import MatchService
from repro.serve.snapshot import load_index, save_index

WORDS = st.text(alphabet="ABC", min_size=0, max_size=5)


def oracle_answer(model: dict[int, str], query: str, k: int) -> list[int]:
    """Query ids from an index rebuilt from scratch over the model."""
    live = sorted(model)
    fresh = FBFIndex([model[sid] for sid in live], scheme="alpha")
    return [live[pos] for pos in fresh.search(query, k)]


class MutableIndexMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.index = MutableIndex(scheme="alpha", compact_ratio=0.4)
        self.model: dict[int, str] = {}
        self.tmpdir = tempfile.mkdtemp(prefix="serve-eq-")

    def teardown(self):
        shutil.rmtree(self.tmpdir, ignore_errors=True)

    @rule(s=WORDS)
    def add(self, s):
        sid = self.index.add(s)
        assert sid not in self.model  # ids never recycled
        self.model[sid] = s

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def remove(self, data):
        sid = data.draw(st.sampled_from(sorted(self.model)))
        self.index.remove(sid)
        del self.model[sid]

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def remove_unknown_raises(self, data):
        sid = max(self.model) + 1 + data.draw(st.integers(0, 5))
        try:
            self.index.remove(sid)
        except KeyError:
            pass
        else:
            raise AssertionError("remove of unknown id must raise")

    @rule()
    def compact(self):
        reclaimed = self.index.compact()
        assert reclaimed >= 0
        assert self.index.tombstones == 0

    @rule()
    def snapshot_roundtrip(self):
        path = save_index(self.index, f"{self.tmpdir}/snap.npz")
        loaded, _ = load_index(path)
        assert loaded.generation == self.index.generation
        self.index = loaded

    @rule(query=WORDS, k=st.integers(0, 2))
    def query_matches_rebuilt(self, query, k):
        got = self.index.search(query, k)
        assert got == oracle_answer(self.model, query, k), (query, k)

    @invariant()
    def contents_match_model(self):
        assert len(self.index) == len(self.model)
        assert dict(self.index.items()) == self.model

    @invariant()
    def tombstones_bounded(self):
        # Auto-compaction keeps the dead fraction under the threshold.
        assert self.index.tombstone_ratio < 0.4 or len(self.index) == 0


TestMutableIndexEquivalence = MutableIndexMachine.TestCase
TestMutableIndexEquivalence.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)


class TestServiceEquivalence:
    """The batched service path agrees with the rebuilt oracle too."""

    def test_query_batch_matches_rebuilt_oracle(self, rng):
        svc = MatchService(scheme="alpha", k=1, cache_size=16)
        model: dict[int, str] = {}
        words = ["".join(rng.choice("ABC") for _ in range(rng.randint(1, 5)))
                 for _ in range(200)]
        for step, word in enumerate(words):
            sid = svc.add(word)
            model[sid] = word
            if rng.random() < 0.25 and model:
                victim = rng.choice(sorted(model))
                svc.remove(victim)
                del model[victim]
            if step % 10 == 0:
                queries = [rng.choice(words) for _ in range(4)]
                results = svc.query_batch(queries)
                for res in results:
                    want = tuple(oracle_answer(model, res.value, 1))
                    assert res.ids == want, (step, res.value)
