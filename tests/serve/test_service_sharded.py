"""Sharded `MatchService` behaviour: scatter/gather equivalence (both
in-process and pooled), per-shard telemetry, snapshot-based handoff
events, and load-driven rebalancing.
"""

import pytest

from repro.data.datasets import dataset_for_family
from repro.obs import StatsCollector
from repro.parallel.shm import close_shared_pools
from repro.serve.service import MatchService


@pytest.fixture(scope="module")
def ln_pair():
    return dataset_for_family("LN", 400, seed=23)


def _batched(svc, queries):
    return [(r.value, r.ids) for r in svc.query_batch(queries)]


class TestShardedEquivalence:
    def test_inprocess_scatter_matches_single_shard(self, ln_pair):
        queries = ln_pair.error[:60]
        c_ref, c_shard = StatsCollector("ref"), StatsCollector("sharded")
        ref = MatchService(ln_pair.clean, k=1, collector=c_ref)
        sharded = MatchService(
            ln_pair.clean, k=1, collector=c_shard, shards=4
        )

        assert sharded.sharded and not ref.sharded
        assert _batched(sharded, queries) == _batched(ref, queries)
        assert c_shard.conserved and c_ref.conserved

    def test_pooled_scatter_matches_inprocess(self, ln_pair):
        queries = ln_pair.error[:60]
        c_in, c_pool = StatsCollector("in"), StatsCollector("pooled")
        inproc = MatchService(
            ln_pair.clean, k=1, collector=c_in, shards=4
        )
        pooled = MatchService(
            ln_pair.clean, k=1, collector=c_pool, shards=4, workers=2
        )

        assert _batched(pooled, queries) == _batched(inproc, queries)
        assert c_pool.conserved and c_in.conserved

    def test_mutations_visible_through_sharded_pool(self, ln_pair):
        ref = MatchService(ln_pair.clean, k=1)
        pooled = MatchService(ln_pair.clean, k=1, shards=4, workers=2)
        for svc in (ref, pooled):
            svc.add("ZZYZX")
            svc.remove(0)
        probe = ["ZZYZX", ln_pair.clean[0], *ln_pair.error[:10]]
        assert _batched(pooled, probe) == _batched(ref, probe)


class TestShardedTelemetry:
    def test_per_shard_query_counters_conserve(self, ln_pair):
        svc = MatchService(ln_pair.clean, k=1, shards=4)
        svc.query_batch(ln_pair.error[:40])
        snap = svc.metrics_snapshot()["metrics"]
        per_shard = [
            v["value"]
            for name, v in snap.items()
            if name.startswith("shard_queries_total{")
        ]
        assert per_shard
        # Each query is routed to every shard in its length window; the
        # per-shard tallies sum to the number of (query, shard) visits,
        # which is at least one per query and at most shards per query.
        assert 40 <= sum(per_shard) <= 4 * 40

    def test_shard_worker_gauges_published(self, ln_pair):
        svc = MatchService(ln_pair.clean, k=1, shards=4, workers=2)
        svc.query_batch(ln_pair.error[:10])
        svc.refresh_metrics()
        snap = svc.metrics_snapshot()["metrics"]
        placements = {
            name: v["value"]
            for name, v in snap.items()
            if name.startswith("shard_worker{")
        }
        assert len(placements) == 4
        assert set(placements.values()) <= {0.0, 1.0}

    def test_handoff_emits_event_and_counter(self, ln_pair):
        svc = MatchService(ln_pair.clean, k=1, shards=2, workers=2)
        svc.query_batch(ln_pair.error[:10])  # first publish per shard
        svc.add("BRANDNEWNAME")
        svc.query_batch(ln_pair.error[:10])  # re-publish -> handoff
        handoffs = svc.events.tail(kind="shard_handoff")
        assert handoffs and "shard" in handoffs[0]
        snap = svc.metrics_snapshot()["metrics"]
        assert snap["shard_handoffs_total"]["value"] >= 1.0

    def test_stats_reports_per_shard_breakdown(self, ln_pair):
        svc = MatchService(ln_pair.clean, k=1, shards=3)
        out = svc.stats()
        assert len(out["shards"]) == 3
        assert sum(s["size"] for s in out["shards"]) == len(ln_pair.clean)
        assert {"rows", "tombstones", "generation", "slot"} <= set(
            out["shards"][0]
        )


class TestRebalance:
    def test_rebalance_is_identity_for_single_shard(self, ln_pair):
        svc = MatchService(ln_pair.clean, k=1)
        assert svc.rebalance() == dict(svc._placement)

    def test_rebalance_spreads_load_and_emits_event(self, ln_pair):
        svc = MatchService(ln_pair.clean, k=1, shards=4, workers=2)
        svc.query_batch(ln_pair.error[:20])
        # Skew the observed load so the greedy pass must move something.
        svc._shard_load = {0: 1000, 1: 900, 2: 1, 3: 1}
        placement = svc.rebalance()
        assert set(placement) == {0, 1, 2, 3}
        assert set(placement.values()) == {0, 1}
        # The two heavy shards end up on different workers.
        assert placement[0] != placement[1]
        events = svc.events.tail(kind="shard_rebalance")
        assert events and "placement" in events[-1]
        snap = svc.metrics_snapshot()["metrics"]
        assert snap["shard_rebalances_total"]["value"] >= 1.0

    def test_balanced_load_keeps_default_placement(self, ln_pair):
        svc = MatchService(ln_pair.clean, k=1, shards=4, workers=2)
        svc.query_batch(ln_pair.error[:20])
        before = dict(svc._placement)
        svc._shard_load = {si: 10 for si in range(4)}
        svc.rebalance()
        assert svc._placement == before


def teardown_module(module):
    close_shared_pools()
