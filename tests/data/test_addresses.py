"""Unit tests for the synthetic street-address generator."""

import random
import re

import pytest

from repro.data.addresses import (
    MAX_ADDRESS_LENGTH,
    STREET_SUFFIXES,
    AddressGenerator,
    build_address_pool,
)

_ADDRESS_RE = re.compile(r"^\d{1,4}( [NSEW])? [A-Z]+ [A-Z]+$")


class TestAddressGenerator:
    def test_grammar_shape(self):
        gen = AddressGenerator(50, random.Random(0))
        rng = random.Random(1)
        for _ in range(100):
            addr = gen.generate(rng)
            assert _ADDRESS_RE.match(addr), addr

    def test_max_length_enforced(self):
        gen = AddressGenerator(100, random.Random(0))
        rng = random.Random(2)
        assert all(len(gen.generate(rng)) <= MAX_ADDRESS_LENGTH for _ in range(200))

    def test_suffix_from_vocabulary(self):
        gen = AddressGenerator(20, random.Random(0))
        rng = random.Random(3)
        for _ in range(50):
            suffix = gen.generate(rng).rsplit(" ", 1)[1]
            assert suffix in STREET_SUFFIXES

    def test_street_vocabulary_size(self):
        gen = AddressGenerator(77, random.Random(0))
        assert len(gen.streets) == 77

    def test_streets_reused_across_addresses(self):
        # Realism requirement: many addresses share streets.
        gen = AddressGenerator(10, random.Random(0))
        rng = random.Random(4)
        streets = {gen.generate(rng).split()[-2] for _ in range(200)}
        assert len(streets) <= 10

    def test_invalid_street_count(self):
        with pytest.raises(ValueError):
            AddressGenerator(0)

    def test_pool_unique(self):
        gen = AddressGenerator(40, random.Random(0))
        pool = gen.pool(300, random.Random(5))
        assert len(set(pool)) == 300

    def test_pool_exhaustion_raises(self):
        # One street and a tiny number space cannot make many uniques.
        gen = AddressGenerator(1, random.Random(0))
        with pytest.raises(RuntimeError):
            # 1 street x ~8 directions x 18 suffixes x 9999 numbers is
            # large, so force failure with an absurd request via a tiny
            # custom generator instead.
            tiny = AddressGenerator(1, random.Random(0))
            tiny.streets = ("OAK",)
            # monkey-limit the number space by wrapping generate
            original = tiny.generate

            def tiny_generate(rng):
                a = original(rng)
                num, rest = a.split(" ", 1)
                return "1 " + rest

            tiny.generate = tiny_generate
            tiny.pool(500, random.Random(6))


class TestBuildAddressPool:
    def test_size_and_uniqueness(self):
        pool = build_address_pool(400, random.Random(7))
        assert len(pool) == len(set(pool)) == 400

    def test_alphanumeric_content(self):
        pool = build_address_pool(100, random.Random(8))
        for a in pool:
            assert any(c.isdigit() for c in a)
            assert any(c.isalpha() for c in a)

    def test_street_scaling(self):
        pool = build_address_pool(200, random.Random(9), n_streets=5)
        streets = {a.split()[-2] for a in pool}
        assert len(streets) <= 5

    def test_reproducible(self):
        assert build_address_pool(50, random.Random(1)) == build_address_pool(
            50, random.Random(1)
        )
