"""Unit tests for the birthdate generator."""

import datetime as dt
import random

import pytest

from repro.data.dates import (
    PAPER_DATE_RANGE,
    build_birthdate_pool,
    random_birthdate,
)


def _parse(s: str) -> dt.date:
    return dt.date(int(s[4:]), int(s[:2]), int(s[2:4]))


class TestRandomBirthdate:
    def test_format(self):
        rng = random.Random(0)
        for _ in range(100):
            s = random_birthdate(rng)
            assert len(s) == 8 and s.isdigit()
            _parse(s)  # must be a real calendar date

    def test_paper_window(self):
        # Paper: between 2/25/1912 and 2/24/2012 inclusive.
        rng = random.Random(1)
        lo, hi = PAPER_DATE_RANGE
        for _ in range(500):
            d = _parse(random_birthdate(rng))
            assert lo <= d <= hi

    def test_paper_window_size(self):
        lo, hi = PAPER_DATE_RANGE
        assert (hi - lo).days + 1 == 36_525  # the paper's "36,525 unique dates"

    def test_custom_range(self):
        rng = random.Random(2)
        window = (dt.date(2000, 1, 1), dt.date(2000, 1, 1))
        assert random_birthdate(rng, window) == "01012000"

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            random_birthdate(
                random.Random(0), (dt.date(2001, 1, 1), dt.date(2000, 1, 1))
            )

    def test_deterministic(self):
        assert random_birthdate(random.Random(3)) == random_birthdate(
            random.Random(3)
        )


class TestPool:
    def test_size(self):
        pool = build_birthdate_pool(300, random.Random(4))
        assert len(pool) == 300

    def test_duplicates_allowed_by_default(self):
        # Sampling 5,000 of 36,525 dates collides; the paper's pool
        # itself has duplicates (35,525 of 36,525).
        pool = build_birthdate_pool(5000, random.Random(5))
        assert len(set(pool)) < len(pool)

    def test_unique_mode(self):
        pool = build_birthdate_pool(300, random.Random(6), unique=True)
        assert len(set(pool)) == 300

    def test_unique_mode_overdraw_rejected(self):
        window = (dt.date(2000, 1, 1), dt.date(2000, 1, 5))
        with pytest.raises(ValueError):
            build_birthdate_pool(10, random.Random(7), window, unique=True)

    def test_fixed_length_field(self):
        pool = build_birthdate_pool(100, random.Random(8))
        assert {len(d) for d in pool} == {8}
