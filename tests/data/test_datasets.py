"""Unit tests for clean/error dataset pairing."""

import random

import pytest

from repro.data.datasets import FAMILIES, DatasetPair, dataset_for_family, make_pair
from repro.distance.damerau import damerau_levenshtein


class TestDatasetPair:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            DatasetPair("X", ["a"], [], seed=0)

    def test_counters(self):
        dp = DatasetPair("X", ["a", "b"], ["a1", "b1"], seed=0)
        assert dp.n == 2
        assert dp.true_matches == 2
        assert dp.pair_count == 4


class TestMakePair:
    def test_ground_truth_alignment(self):
        pool = [f"{i:09d}" for i in range(1, 200)]
        dp = make_pair("SSN", pool, 50, random.Random(0))
        assert dp.n == 50
        for c, e in zip(dp.clean, dp.error):
            assert damerau_levenshtein(c, e) == 1

    def test_sample_without_replacement(self):
        pool = [f"{i:09d}" for i in range(1, 100)]
        dp = make_pair("SSN", pool, 99, random.Random(1))
        assert len(set(dp.clean)) == 99

    def test_oversample_rejected(self):
        with pytest.raises(ValueError):
            make_pair("X", ["a", "b"], 3, random.Random(0))

    def test_reproducible_via_seed(self):
        pool = [f"{i:09d}" for i in range(1, 500)]
        a = make_pair("SSN", pool, 20, random.Random(7))
        b = make_pair("SSN", pool, 20, random.Random(7))
        assert a.clean == b.clean and a.error == b.error


class TestDatasetForFamily:
    def test_all_six_families(self):
        assert set(FAMILIES) == {"FN", "LN", "Ad", "Ph", "Bi", "SSN"}

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_family_builds_with_unit_distance(self, family):
        dp = dataset_for_family(family, 40, seed=2)
        assert dp.family == family and dp.n == 40
        for c, e in zip(dp.clean, dp.error):
            assert damerau_levenshtein(c, e) == 1

    def test_unknown_family(self):
        with pytest.raises(ValueError, match="unknown family"):
            dataset_for_family("ZZ", 10)

    def test_pool_size_override(self):
        dp = dataset_for_family("SSN", 10, seed=0, pool_size=10)
        assert dp.n == 10

    def test_pool_smaller_than_sample_rejected(self):
        with pytest.raises(ValueError):
            dataset_for_family("SSN", 10, seed=0, pool_size=5)

    def test_fixed_length_families(self):
        for family, length in (("SSN", 9), ("Ph", 10), ("Bi", 8)):
            dp = dataset_for_family(family, 20, seed=1)
            assert all(len(s) == length for s in dp.clean), family
            assert FAMILIES[family].fixed_length

    def test_signature_kinds(self):
        assert FAMILIES["LN"].kind == "alpha"
        assert FAMILIES["Ad"].kind == "alnum"
        assert FAMILIES["SSN"].kind == "numeric"

    def test_seed_determinism(self):
        a = dataset_for_family("LN", 30, seed=11)
        b = dataset_for_family("LN", 30, seed=11)
        assert a.clean == b.clean and a.error == b.error

    def test_different_seeds_differ(self):
        a = dataset_for_family("LN", 30, seed=1)
        b = dataset_for_family("LN", 30, seed=2)
        assert a.clean != b.clean
