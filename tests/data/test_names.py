"""Unit tests for the census-calibrated name pools."""

import random
from collections import Counter

import pytest

from repro.data.names import (
    FIRST_NAMES,
    LAST_NAMES,
    PAPER_FN_LENGTH_HISTOGRAM,
    PAPER_LN_LENGTH_HISTOGRAM,
    NameGenerator,
    build_first_name_pool,
    build_last_name_pool,
)


class TestEmbeddedLists:
    def test_table13_total(self):
        # Table 13's counts sum to the paper's stated 151,670 names.
        assert sum(PAPER_LN_LENGTH_HISTOGRAM.values()) == 151_670

    def test_table13_length_range(self):
        # Paper: last names span lengths 2 to 15.
        assert min(PAPER_LN_LENGTH_HISTOGRAM) == 2
        assert max(PAPER_LN_LENGTH_HISTOGRAM) == 15

    def test_fn_length_range(self):
        # Paper: first names span lengths 2 to 11.
        assert min(PAPER_FN_LENGTH_HISTOGRAM) == 2
        assert max(PAPER_FN_LENGTH_HISTOGRAM) == 11

    def test_seed_lists_uppercase_unique(self):
        assert len(set(LAST_NAMES)) == len(LAST_NAMES)
        assert all(n.isupper() and n.isalpha() for n in LAST_NAMES)
        assert all(n.isupper() and n.isalpha() for n in FIRST_NAMES)

    def test_common_names_present(self):
        assert "SMITH" in LAST_NAMES
        assert "JAMES" in FIRST_NAMES


class TestNameGenerator:
    def test_exact_length(self):
        gen = NameGenerator(LAST_NAMES)
        rng = random.Random(1)
        for length in (2, 5, 9, 15):
            assert len(gen.generate(length, rng)) == length

    def test_alphabetic_output(self):
        gen = NameGenerator(LAST_NAMES)
        rng = random.Random(2)
        for _ in range(50):
            name = gen.generate(rng.randint(2, 12), rng)
            assert name.isalpha() and name.isupper()

    def test_invalid_length(self):
        gen = NameGenerator(["ABC"])
        with pytest.raises(ValueError):
            gen.generate(0, random.Random(0))

    def test_empty_seed_rejected(self):
        with pytest.raises(ValueError):
            NameGenerator([])

    def test_deterministic_under_seed(self):
        gen = NameGenerator(LAST_NAMES)
        a = gen.generate(7, random.Random(42))
        b = gen.generate(7, random.Random(42))
        assert a == b

    def test_pool_unique(self):
        gen = NameGenerator(LAST_NAMES)
        pool = gen.pool(500, PAPER_LN_LENGTH_HISTOGRAM, random.Random(0))
        assert len(pool) == len(set(pool)) == 500

    def test_pool_includes_seed_names(self):
        gen = NameGenerator(LAST_NAMES)
        pool = gen.pool(2000, PAPER_LN_LENGTH_HISTOGRAM, random.Random(0))
        assert "SMITH" in pool

    def test_pool_histogram_mass(self):
        # Rounding drift aside, pool lengths track the target histogram.
        gen = NameGenerator(LAST_NAMES)
        pool = gen.pool(3000, PAPER_LN_LENGTH_HISTOGRAM, random.Random(3))
        counts = Counter(len(n) for n in pool)
        total = sum(PAPER_LN_LENGTH_HISTOGRAM.values())
        for L, target in PAPER_LN_LENGTH_HISTOGRAM.items():
            expected = target * 3000 / total
            if expected >= 30:
                assert abs(counts[L] - expected) <= max(5, 0.25 * expected), L

    def test_pool_invalid_size(self):
        gen = NameGenerator(LAST_NAMES)
        with pytest.raises(ValueError):
            gen.pool(0, PAPER_LN_LENGTH_HISTOGRAM, random.Random(0))


class TestPoolBuilders:
    def test_last_name_pool(self):
        pool = build_last_name_pool(800, random.Random(5))
        assert len(pool) == 800
        assert all(2 <= len(n) <= 15 for n in pool)

    def test_first_name_pool_stats(self):
        # The paper's FN statistics: lengths 2-11, mean about 5.96.
        pool = build_first_name_pool(2000, random.Random(6))
        lengths = [len(n) for n in pool]
        assert min(lengths) >= 2 and max(lengths) <= 11
        mean = sum(lengths) / len(lengths)
        assert 5.4 <= mean <= 6.5

    def test_custom_histogram(self):
        pool = build_last_name_pool(100, random.Random(7), histogram={4: 1})
        assert all(len(n) == 4 for n in pool)

    def test_reproducible(self):
        a = build_last_name_pool(50, random.Random(9))
        b = build_last_name_pool(50, random.Random(9))
        assert a == b
