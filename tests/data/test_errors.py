"""Unit and property tests for single-edit error injection."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.data.errors import EditOp, ErrorInjector, infer_alphabet, inject_error
from repro.distance.damerau import damerau_levenshtein

nonempty = st.text(alphabet="ABC0123456789", min_size=1, max_size=12)
seeds = st.integers(0, 2**31)


class TestInferAlphabet:
    def test_numeric(self):
        assert infer_alphabet("12345") == "0123456789"

    def test_alpha(self):
        assert infer_alphabet("SMITH") == "ABCDEFGHIJKLMNOPQRSTUVWXYZ"

    def test_mixed(self):
        assert set("A9") <= set(infer_alphabet("12 MAIN ST"))


class TestErrorInjector:
    @given(nonempty, seeds)
    def test_distance_exactly_one(self, s, seed):
        # The ground-truth invariant every experiment rests on.
        t = ErrorInjector().inject(s, random.Random(seed))
        assert damerau_levenshtein(s, t) == 1

    @given(nonempty, seeds)
    def test_never_identity(self, s, seed):
        assert ErrorInjector().inject(s, random.Random(seed)) != s

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ErrorInjector().inject("", random.Random(0))

    def test_no_ops_rejected(self):
        with pytest.raises(ValueError):
            ErrorInjector(ops=())

    def test_substitute_only(self):
        inj = ErrorInjector(ops=[EditOp.SUBSTITUTE])
        rng = random.Random(1)
        for _ in range(50):
            t = inj.inject("555", rng)
            assert len(t) == 3 and t != "555"

    def test_delete_only(self):
        inj = ErrorInjector(ops=[EditOp.DELETE])
        t = inj.inject("ABCD", random.Random(2))
        assert len(t) == 3

    def test_insert_only(self):
        inj = ErrorInjector(ops=[EditOp.INSERT])
        t = inj.inject("ABCD", random.Random(3))
        assert len(t) == 5

    def test_transpose_only(self):
        inj = ErrorInjector(ops=[EditOp.TRANSPOSE])
        t = inj.inject("AB", random.Random(4))
        assert t == "BA"

    def test_transpose_infeasible_falls_back(self):
        # "AA" has no distinct adjacent pair; the injector must fall
        # back to a feasible op rather than return the original.
        inj = ErrorInjector(ops=[EditOp.TRANSPOSE, EditOp.SUBSTITUTE])
        rng = random.Random(5)
        for _ in range(20):
            t = inj.inject("AA", rng)
            assert t != "AA"

    def test_min_length_respected(self):
        inj = ErrorInjector(ops=[EditOp.DELETE, EditOp.SUBSTITUTE], min_length=2)
        rng = random.Random(6)
        for _ in range(50):
            assert len(inj.inject("AB", rng)) >= 2

    def test_single_char_never_empties_by_default(self):
        inj = ErrorInjector()
        rng = random.Random(7)
        for _ in range(100):
            assert inj.inject("7", rng) != ""

    def test_custom_alphabet(self):
        inj = ErrorInjector(ops=[EditOp.SUBSTITUTE], alphabet="XY")
        rng = random.Random(8)
        for _ in range(20):
            t = inj.inject("XXX", rng)
            assert set(t) <= {"X", "Y"}

    def test_inject_many_alignment(self):
        inj = ErrorInjector()
        rng = random.Random(9)
        clean = ["ALPHA", "BRAVO", "123456"]
        dirty = inj.inject_many(clean, rng)
        assert len(dirty) == 3
        for c, d in zip(clean, dirty):
            assert damerau_levenshtein(c, d) == 1

    @given(nonempty, seeds)
    def test_numeric_strings_stay_numeric_under_substitution(self, s, seed):
        if not s.isdigit():
            return
        inj = ErrorInjector(ops=[EditOp.SUBSTITUTE])
        t = inj.inject(s, random.Random(seed))
        assert t.isdigit()


class TestOneShot:
    def test_inject_error(self):
        t = inject_error("SMITH", random.Random(0))
        assert damerau_levenshtein("SMITH", t) == 1
