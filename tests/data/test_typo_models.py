"""Unit tests for the keyboard / keypad / OCR typo models."""

import random

from hypothesis import given
from hypothesis import strategies as st

from repro.data.errors import EditOp
from repro.data.typo_models import (
    KEYPAD_NEIGHBOURS,
    OCR_CONFUSIONS,
    QWERTY_NEIGHBOURS,
    keyboard_injector,
    keypad_injector,
    ocr_injector,
)
from repro.distance.damerau import damerau_levenshtein

seeds = st.integers(0, 2**31)
names = st.text(alphabet="ABCDEFGHIJKLMNOPQRSTUVWXYZ", min_size=1, max_size=10)
digits = st.text(alphabet="0123456789", min_size=1, max_size=10)


class TestTables:
    def test_qwerty_symmetric(self):
        for key, neighbours in QWERTY_NEIGHBOURS.items():
            for n in neighbours:
                assert key in QWERTY_NEIGHBOURS[n], (key, n)

    def test_keypad_symmetric(self):
        for key, neighbours in KEYPAD_NEIGHBOURS.items():
            for n in neighbours:
                assert key in KEYPAD_NEIGHBOURS[n], (key, n)

    def test_ocr_symmetrized(self):
        for key, confusions in OCR_CONFUSIONS.items():
            for c in confusions:
                assert key in OCR_CONFUSIONS[c], (key, c)

    def test_no_self_confusion(self):
        for table in (QWERTY_NEIGHBOURS, KEYPAD_NEIGHBOURS, OCR_CONFUSIONS):
            for key, vals in table.items():
                assert key not in vals


class TestInjectors:
    @given(names, seeds)
    def test_keyboard_distance_one(self, s, seed):
        t = keyboard_injector().inject(s, random.Random(seed))
        assert damerau_levenshtein(s, t) == 1

    @given(digits, seeds)
    def test_keypad_distance_one(self, s, seed):
        t = keypad_injector().inject(s, random.Random(seed))
        assert damerau_levenshtein(s, t) == 1

    @given(names, seeds)
    def test_ocr_distance_one(self, s, seed):
        t = ocr_injector().inject(s, random.Random(seed))
        assert damerau_levenshtein(s, t) == 1

    def test_keyboard_substitutions_are_adjacent(self):
        inj = keyboard_injector(ops=[EditOp.SUBSTITUTE])
        rng = random.Random(0)
        for _ in range(100):
            s = "SMITH"
            t = inj.inject(s, rng)
            diff = [(a, b) for a, b in zip(s, t) if a != b]
            assert len(diff) == 1
            orig, repl = diff[0]
            assert repl in QWERTY_NEIGHBOURS[orig]

    def test_keypad_substitutions_are_adjacent(self):
        inj = keypad_injector(ops=[EditOp.SUBSTITUTE])
        rng = random.Random(1)
        for _ in range(100):
            s = "5551234"
            t = inj.inject(s, rng)
            diff = [(a, b) for a, b in zip(s, t) if a != b]
            orig, repl = diff[0]
            assert repl in KEYPAD_NEIGHBOURS[orig]

    def test_ocr_prefers_confusable_positions(self):
        inj = ocr_injector(ops=[EditOp.SUBSTITUTE])
        rng = random.Random(2)
        confused = 0
        for _ in range(100):
            s = "XO"  # X has no OCR entry, O does
            t = inj.inject(s, rng)
            if t[0] == "X":  # the confusable O was chosen
                confused += 1
                assert t[1] in OCR_CONFUSIONS["O"]
        assert confused == 100

    def test_fallback_when_nothing_confusable(self):
        inj = keypad_injector(ops=[EditOp.SUBSTITUTE])
        rng = random.Random(3)
        # Letters have no keypad entries: falls back to uniform subs.
        t = inj.inject("ABC", rng)
        assert t != "ABC" and len(t) == 3


class TestSafetyUnderModels:
    def test_fbf_recovers_all_matches_under_any_model(self):
        # FBF's guarantee is error-model independent.
        import random as _r

        from repro.data.names import build_last_name_pool
        from repro.parallel.chunked import ChunkedJoin

        rng = _r.Random(4)
        pool = build_last_name_pool(150, rng)
        for injector in (keyboard_injector(), ocr_injector()):
            dirty = injector.inject_many(pool, rng)
            join = ChunkedJoin(pool, dirty, k=1, scheme_kind="alpha")
            assert join.run("FPDL").diagonal_matches == len(pool)
