"""Unit tests for the NANP phone-number generator."""

import random

from repro.data.phone import build_phone_pool, is_valid_nanp, random_nanp_number


class TestRandomNANP:
    def test_shape(self):
        rng = random.Random(0)
        for _ in range(200):
            n = random_nanp_number(rng)
            assert len(n) == 10 and n.isdigit()

    def test_area_code_constraints(self):
        rng = random.Random(1)
        for _ in range(300):
            n = random_nanp_number(rng)
            assert n[0] not in "01"  # NPA first digit 2-9
            assert n[1] != "9"  # NPA second digit 0-8
            assert n[1:3] != "11"  # no N11 area codes

    def test_exchange_constraints(self):
        rng = random.Random(2)
        for _ in range(300):
            n = random_nanp_number(rng)
            assert n[3] not in "01"  # NXX first digit 2-9
            assert n[4:6] != "11"  # no N11 exchanges
            assert n[3:6] != "555"

    def test_validator_accepts_generated(self):
        rng = random.Random(3)
        assert all(is_valid_nanp(random_nanp_number(rng)) for _ in range(300))

    def test_deterministic(self):
        assert random_nanp_number(random.Random(7)) == random_nanp_number(
            random.Random(7)
        )


class TestValidator:
    def test_rejects_bad_shapes(self):
        assert not is_valid_nanp("123")
        assert not is_valid_nanp("abcdefghij")
        assert not is_valid_nanp("12345678901")

    def test_rejects_leading_zero_or_one(self):
        assert not is_valid_nanp("0234567890")
        assert not is_valid_nanp("1234567890")

    def test_rejects_n11(self):
        assert not is_valid_nanp("2119234567")  # 211 area
        assert not is_valid_nanp("2349114567")  # 911 exchange

    def test_rejects_555_exchange(self):
        assert not is_valid_nanp("2345551234")

    def test_accepts_plain_number(self):
        assert is_valid_nanp("2155552123") is False  # 555 exchange
        assert is_valid_nanp("2154652123") is True


class TestPool:
    def test_unique(self):
        pool = build_phone_pool(500, random.Random(4))
        assert len(set(pool)) == 500

    def test_all_valid(self):
        pool = build_phone_pool(200, random.Random(5))
        assert all(is_valid_nanp(p) for p in pool)

    def test_fixed_length_field(self):
        # The property the paper exploits: the length filter is useless
        # on this family.
        pool = build_phone_pool(100, random.Random(6))
        assert len({len(p) for p in pool}) == 1
