"""Unit tests for the SSA-scheme SSN generator."""

import random

from repro.data.ssn import build_ssn_pool, is_valid_ssn, random_ssn


class TestRandomSSN:
    def test_shape(self):
        rng = random.Random(0)
        for _ in range(200):
            s = random_ssn(rng)
            assert len(s) == 9 and s.isdigit()

    def test_area_constraints(self):
        rng = random.Random(1)
        for _ in range(500):
            s = random_ssn(rng)
            area = int(s[:3])
            assert 1 <= area <= 899
            assert area != 666

    def test_group_serial_nonzero(self):
        rng = random.Random(2)
        for _ in range(500):
            s = random_ssn(rng)
            assert int(s[3:5]) >= 1
            assert int(s[5:]) >= 1

    def test_deterministic(self):
        assert random_ssn(random.Random(3)) == random_ssn(random.Random(3))


class TestValidator:
    def test_rejects_area_000(self):
        assert not is_valid_ssn("000123456")

    def test_rejects_area_666(self):
        assert not is_valid_ssn("666123456")

    def test_rejects_900_range(self):
        assert not is_valid_ssn("900123456")

    def test_rejects_zero_group(self):
        assert not is_valid_ssn("123004567")

    def test_rejects_zero_serial(self):
        assert not is_valid_ssn("123450000")

    def test_rejects_bad_shape(self):
        assert not is_valid_ssn("12345678")
        assert not is_valid_ssn("12345678X")

    def test_accepts_valid(self):
        assert is_valid_ssn("123456789")


class TestPool:
    def test_unique_and_valid(self):
        pool = build_ssn_pool(400, random.Random(4))
        assert len(set(pool)) == 400
        assert all(is_valid_ssn(s) for s in pool)

    def test_fixed_length(self):
        pool = build_ssn_pool(100, random.Random(5))
        assert {len(s) for s in pool} == {9}
