"""Unit tests for the multiplicity layer (collapse, triangle, memo)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.matchers import build_matcher
from repro.core.multiplicity import (
    CollapsedJoinResult,
    CollapsedSide,
    PairWeighter,
    VerificationMemo,
    estimate_uniqueness,
    expand_matches,
    positional_diagonal,
)
from repro.core.plan import JoinPlanner

dup_lists = st.lists(
    st.sampled_from(["SMITH", "SMYTH", "JONES", "JONAS", "LEE"]),
    min_size=1,
    max_size=12,
)


class TestCollapsedSide:
    def test_roundtrip_identity(self):
        strings = ["B", "A", "B", "C", "A", "B"]
        side = CollapsedSide.from_strings(strings)
        assert [side.values[u] for u in side.inverse] == strings
        assert side.n == 6 and side.n_unique == 3
        # First-appearance order: B=0, A=1, C=2.
        assert side.values == ["B", "A", "C"]
        assert side.counts.tolist() == [3, 2, 1]

    def test_groups_partition_the_indices(self):
        strings = ["X", "Y", "X", "Z", "Y"]
        side = CollapsedSide.from_strings(strings)
        groups = side.groups()
        seen = sorted(i for g in groups for i in g.tolist())
        assert seen == list(range(5))
        for uid, g in enumerate(groups):
            assert all(strings[i] == side.values[uid] for i in g.tolist())

    def test_identity_view(self):
        strings = ["A", "A", "B"]
        side = CollapsedSide.identity(strings)
        assert side.values == strings
        assert side.counts.tolist() == [1, 1, 1]
        assert side.inverse.tolist() == [0, 1, 2]

    def test_empty(self):
        side = CollapsedSide.from_strings([])
        assert side.n == 0 and side.n_unique == 0

    @given(dup_lists)
    def test_counts_sum_to_n(self, strings):
        side = CollapsedSide.from_strings(strings)
        assert int(side.counts.sum()) == len(strings)
        assert side.n_unique == len(set(strings))


class TestEstimateUniqueness:
    def test_exact_on_small_inputs(self):
        assert estimate_uniqueness(["A", "A", "B", "C"]) == 0.75
        assert estimate_uniqueness([]) == 1.0
        assert estimate_uniqueness(["X"] * 50) == 1 / 50

    def test_sampled_on_large_inputs(self):
        # 10k rows of 10 distinct values: the stride sample must see
        # heavy duplication even though it reads only 1024 rows.
        strings = [f"V{i % 10}" for i in range(10_000)]
        assert estimate_uniqueness(strings) < 0.05


class TestPairWeighter:
    def test_plain_product_weights(self):
        w = PairWeighter([2, 3], [5, 1])
        assert w.weight(0, 0) == 10
        assert w.weight(1, 1) == 3
        assert w.block(np.array([0, 1]), np.array([1, 0])).tolist() == [2, 15]

    def test_symmetric_doubles_off_diagonal_only(self):
        w = PairWeighter([2, 3], [2, 3], symmetric=True)
        assert w.weight(0, 0) == 4
        assert w.weight(0, 1) == 12  # 2 * 3, doubled
        assert w.block(np.array([0, 0]), np.array([0, 1])).tolist() == [4, 12]

    @given(st.lists(st.integers(1, 5), min_size=1, max_size=8))
    def test_triangle_identity(self, counts):
        # sum_{u<=v} weight(u, v) == (sum counts)**2 — the invariant the
        # triangular self-join's conservation accounting rests on.
        n = sum(counts)
        w = PairWeighter(counts, counts, symmetric=True)
        u = len(counts)
        total = sum(
            w.weight(i, j) for i in range(u) for j in range(i, u)
        )
        assert total == n * n


class TestVerificationMemo:
    def test_canonical_key_serves_both_orders(self):
        memo = VerificationMemo()
        memo.store("B", "A", True)
        assert memo.lookup("A", "B") is True
        assert memo.lookup("B", "A") is True
        assert memo.hits == 2

    def test_miss_then_hit_counters(self):
        memo = VerificationMemo()
        assert memo.lookup("X", "Y") is None
        memo.store("X", "Y", False)
        assert memo.lookup("X", "Y") is False
        assert (memo.misses, memo.hits) == (1, 1)

    def test_fifo_eviction(self):
        memo = VerificationMemo(capacity=2)
        memo.store("A", "A", True)
        memo.store("B", "B", True)
        memo.store("C", "C", True)  # evicts the (A, A) entry
        assert memo.lookup("A", "A") is None
        assert memo.lookup("B", "B") is True
        assert len(memo) == 2

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            VerificationMemo(capacity=0)

    def test_matcher_consults_memo(self):
        calls = []
        matcher = build_matcher("DL", k=1)
        real = matcher.verifier
        matcher.verifier = lambda s, t: calls.append((s, t)) or real(s, t)
        matcher.memo = VerificationMemo()
        matcher.prepare(["AB", "AB"], ["AC"])
        assert matcher.matches(0, 0) and matcher.matches(1, 0)
        assert len(calls) == 1  # second arrival answered from the memo
        assert matcher.verified_pairs == 2  # arrivals still both counted


class TestExpansion:
    def test_expand_matches_brute_force(self):
        left = ["A", "B", "A", "C"]
        right = ["B", "A", "B"]
        cl = CollapsedSide.from_strings(left)
        cr = CollapsedSide.from_strings(right)
        # Unique matches: left A (uid 0) with right A (uid 1).
        got = sorted(expand_matches([(0, 1)], cl, cr))
        want = sorted(
            (i, j)
            for i in range(len(left))
            for j in range(len(right))
            if left[i] == "A" and right[j] == "A"
        )
        assert got == want

    def test_symmetric_expansion_mirrors(self):
        data = ["A", "B", "A"]
        side = CollapsedSide.from_strings(data)
        got = sorted(expand_matches([(0, 1)], side, side, symmetric=True))
        want = sorted(
            (i, j)
            for i in range(3)
            for j in range(3)
            if {data[i], data[j]} == {"A", "B"}
        )
        assert got == want

    def test_positional_diagonal(self):
        left = ["A", "B", "C"]
        right = ["A", "X", "C"]
        cl = CollapsedSide.from_strings(left)
        cr = CollapsedSide.from_strings(right)
        unique_matches = [
            (u, v)
            for u in range(cl.n_unique)
            for v in range(cr.n_unique)
            if cl.values[u] == cr.values[v]
        ]
        assert positional_diagonal(unique_matches, cl, cr) == 2

    def test_collapsed_result_expands_lazily(self):
        calls = []

        def expander(um):
            calls.append(um)
            return [(0, 0), (0, 1)]

        r = CollapsedJoinResult(
            "DL", 2, 2, match_count=2,
            unique_matches=[(0, 0)], expander=expander,
        )
        assert calls == []  # nothing expanded yet
        assert r.matches == [(0, 0), (0, 1)]
        assert r.matches is r.matches  # cached after first access
        assert len(calls) == 1


class TestPlannerIntegration:
    DATA = ["SMITH"] * 5 + ["SMYTH"] * 3 + ["JONES"] * 2

    def _reference(self):
        p = JoinPlanner(
            list(self.DATA), list(self.DATA),
            k=1, scheme="alpha", collapse="off", self_join=False, memo="off",
        )
        return p.run(
            "FPDL", generator="all-pairs", backend="scalar",
            record_matches=True,
        )

    def test_collapsed_self_join_equals_reference(self):
        ref = self._reference()
        p = JoinPlanner(self.DATA, self.DATA, k=1, scheme="alpha")
        r = p.run("FPDL", record_matches=True)
        assert r.match_count == ref.match_count
        assert r.diagonal_matches == ref.diagonal_matches
        assert sorted(r.matches) == sorted(ref.matches)
        # The whole point: unique-space work, original-pair answers.
        assert r.unique_left == r.unique_right == 3
        assert r.pairs_compared == 6  # triangle of 3 uniques
        assert ref.pairs_compared == 100

    def test_collapse_on_two_datasets(self):
        left = ["ANNA", "ANNA", "BETH", "CARA", "CARA"]
        right = ["ANNA", "BETH", "BETH", "DANA"]
        p_ref = JoinPlanner(
            left, right, k=1, scheme="alpha", collapse="off", memo="off"
        )
        ref = p_ref.run(
            "LDL", generator="all-pairs", backend="scalar", record_matches=True
        )
        p = JoinPlanner(left, right, k=1, scheme="alpha", collapse="on")
        r = p.run("LDL", record_matches=True)
        assert r.match_count == ref.match_count
        assert r.diagonal_matches == ref.diagonal_matches
        assert sorted(r.matches) == sorted(ref.matches)
        assert (r.unique_left, r.unique_right) == (3, 3)

    def test_uncollapsed_results_have_no_unique_counts(self):
        p = JoinPlanner(
            ["AB"], ["AC"], k=1, collapse="off", memo="off"
        )
        r = p.run("DL")
        assert r.unique_left is None and r.unique_right is None

    def test_self_join_forced_on_unequal_data_rejected(self):
        with pytest.raises(ValueError, match="self_join"):
            JoinPlanner(["A"], ["B"], self_join=True)

    def test_collapse_auto_skips_unique_data(self):
        strings = [f"{i:06d}" for i in range(50)]
        p = JoinPlanner(strings, list(reversed(strings)), k=1)
        assert not p.collapse_active()

    def test_memo_auto_follows_duplication(self):
        dup = ["AA", "AA", "AB"]
        uniq = ["AA", "AB", "AC"]
        assert (
            JoinPlanner(dup, list(uniq), collapse="off").memo_for("DL")
            is not None
        )
        assert JoinPlanner(list(uniq), list(uniq)).memo_for("DL") is None
        # Filter-only stacks have nothing to memoize.
        assert (
            JoinPlanner(dup, list(uniq), collapse="off").memo_for("FBF")
            is None
        )

    def test_memoized_scalar_plan_equals_reference(self):
        left = ["SMITH", "SMITH", "SMYTH", "JONES", "SMITH"]
        right = ["SMYTH", "SMITH", "SMITH", "JONAS"]
        ref = JoinPlanner(
            left, right, k=1, scheme="alpha", collapse="off", memo="off"
        ).run("FPDL", generator="all-pairs", backend="scalar",
              record_matches=True)
        p = JoinPlanner(
            left, right, k=1, scheme="alpha", collapse="off", memo="on"
        )
        r = p.run("FPDL", generator="all-pairs", backend="scalar",
                  record_matches=True)
        assert sorted(r.matches) == sorted(ref.matches)
        assert r.verified_pairs == ref.verified_pairs  # arrivals, not work
        memo = p.memo_for("FPDL")
        assert memo.hits > 0  # duplicates actually hit the cache
