"""Unit tests for the MatchStrings join driver (Algorithm 7)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.join import match_strings
from repro.core.matchers import build_matcher
from repro.distance.damerau import damerau_levenshtein

pool = st.lists(
    st.text(alphabet="0123456789", min_size=3, max_size=9), min_size=1, max_size=6
)


class TestMatchStrings:
    def test_counts_and_diagonal(self):
        m = build_matcher("FPDL", k=1, scheme="numeric")
        r = match_strings(
            ["123456789", "555555555"], ["123456780", "111111111"], m
        )
        assert r.match_count == 1
        assert r.diagonal_matches == 1
        assert r.off_diagonal_matches == 0
        assert r.pairs_compared == 4

    def test_record_matches(self):
        m = build_matcher("DL", k=1)
        r = match_strings(["AB"], ["AB", "AC"], m, record_matches=True)
        assert r.matches == [(0, 0), (0, 1)]
        assert r.match_count == 2

    def test_matches_not_recorded_by_default(self):
        m = build_matcher("DL", k=1)
        r = match_strings(["AB"], ["AB"], m)
        assert r.matches == []
        assert r.match_count == 1

    def test_explicit_pairs_subset(self):
        m = build_matcher("DL", k=0)
        r = match_strings(["A", "B"], ["A", "B"], m, pairs=[(0, 0), (0, 1)])
        assert r.match_count == 1
        assert r.diagonal_matches == 1

    def test_verified_pairs_propagated(self):
        m = build_matcher("FDL", k=1, scheme="numeric")
        r = match_strings(["123456789"], ["123456780"], m)
        assert r.verified_pairs == 1

    def test_empty_datasets(self):
        m = build_matcher("DL", k=1)
        r = match_strings([], [], m)
        assert r.match_count == 0 and r.pairs_compared == 0

    def test_asymmetric_sizes(self):
        m = build_matcher("DL", k=0)
        r = match_strings(["X"], ["X", "Y", "Z"], m)
        assert r.pairs_compared == 3
        assert r.match_count == 1

    @given(pool, pool, st.integers(1, 2))
    def test_fpdl_join_equals_dl_join(self, left, right, k):
        # Algorithm 7's guarantee: the filtered join returns exactly the
        # DL match set.
        r_dl = match_strings(
            left, right, build_matcher("DL", k=k), record_matches=True
        )
        r_f = match_strings(
            left,
            right,
            build_matcher("FPDL", k=k, scheme="numeric"),
            record_matches=True,
        )
        assert r_dl.matches == r_f.matches

    @given(pool, pool)
    def test_match_count_consistency(self, left, right):
        m = build_matcher("DL", k=1)
        r = match_strings(left, right, m, record_matches=True)
        assert len(r.matches) == r.match_count
        if list(left) == list(right):
            # Self-join semantics: the diagonal counts value-identity
            # matches, not positional ones.
            assert r.diagonal_matches == sum(
                1 for i, j in r.matches if left[i] == right[j]
            )
        else:
            assert r.diagonal_matches == sum(1 for i, j in r.matches if i == j)
        expected = sum(
            1
            for s in left
            for t in right
            if damerau_levenshtein(s, t) <= 1
        )
        assert r.match_count == expected
