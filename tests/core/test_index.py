"""Unit and property tests for the FBF signature index."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.index import FBFIndex
from repro.data.ssn import build_ssn_pool
from repro.distance.damerau import damerau_levenshtein
from repro.distance.levenshtein import levenshtein

pool_strategy = st.lists(
    st.text(alphabet="0123456789", min_size=1, max_size=10),
    min_size=1,
    max_size=25,
)


class TestConstruction:
    def test_empty(self):
        idx = FBFIndex(scheme="numeric")
        assert len(idx) == 0
        assert idx.search("12345", 1) == []

    def test_scheme_by_string(self):
        idx = FBFIndex(["123"], scheme="numeric")
        assert idx.scheme.name == "numeric"

    def test_scheme_autodetect(self):
        idx = FBFIndex(["SMITH", "JONES"])
        assert idx.scheme.name.startswith("alpha")

    def test_invalid_verifier(self):
        with pytest.raises(ValueError):
            FBFIndex(verifier="hamming")

    def test_getitem(self):
        idx = FBFIndex(["A", "B"], scheme="alpha")
        assert idx[1] == "B"


class TestSearch:
    def test_exact_hit(self):
        idx = FBFIndex(["123456789", "987654321"], scheme="numeric")
        assert idx.search("123456789", 0) == [0]

    def test_single_edit_hit(self):
        idx = FBFIndex(["123456789"], scheme="numeric")
        assert idx.search("123456780", 1) == [0]

    def test_transposition_hit_osa(self):
        idx = FBFIndex(["123456789"], scheme="numeric")
        assert idx.search("123456798", 1) == [0]

    def test_miss(self):
        idx = FBFIndex(["111111111"], scheme="numeric")
        assert idx.search("999999999", 2) == []

    def test_length_pruning(self):
        idx = FBFIndex(["12", "1234", "123456"], scheme="numeric")
        assert idx.search("123", 1) == [0, 1]

    @settings(max_examples=25)
    @given(pool_strategy, st.integers(0, 2), st.integers(0, 10**10))
    def test_exact_vs_brute_force(self, pool, k, qseed):
        rng = random.Random(qseed)
        query = rng.choice(pool)
        idx = FBFIndex(pool, scheme="numeric")
        got = idx.search(query, k)
        want = sorted(
            i
            for i, s in enumerate(pool)
            if damerau_levenshtein(query, s) <= k
        )
        assert got == want

    def test_negative_k(self):
        idx = FBFIndex(["1"], scheme="numeric")
        with pytest.raises(ValueError):
            idx.search("1", -1)

    def test_search_strings(self):
        idx = FBFIndex(["123456789", "123456780"], scheme="numeric")
        assert idx.search_strings("123456789", 1) == ["123456789", "123456780"]


class TestIncremental:
    def test_add_then_find(self):
        idx = FBFIndex(scheme="numeric")
        sid = idx.add("555001234")
        assert idx.search("555001234", 0) == [sid]

    def test_interleaved_adds_and_searches(self):
        rng = random.Random(9)
        pool = build_ssn_pool(120, rng)
        idx = FBFIndex(scheme="numeric")
        reference: list[str] = []
        for i, s in enumerate(pool):
            idx.add(s)
            reference.append(s)
            if i % 10 == 9:
                q = rng.choice(reference)
                got = idx.search(q, 1)
                want = sorted(
                    j
                    for j, r in enumerate(reference)
                    if damerau_levenshtein(q, r) <= 1
                )
                assert got == want

    def test_extend(self):
        idx = FBFIndex(scheme="numeric")
        idx.extend(["123", "124"])
        assert len(idx) == 2
        assert idx.search("123", 1) == [0, 1]


class TestEmptyStrings:
    def test_empty_query_matches_nothing(self):
        idx = FBFIndex(["A", "AB"], scheme="alpha")
        assert idx.search("", 2) == []

    def test_empty_indexed_string_never_matches(self):
        idx = FBFIndex(["", "A"], scheme="alpha")
        assert idx.search("A", 1) == [1]


class TestBitparallelVerifier:
    @settings(max_examples=20)
    @given(pool_strategy, st.integers(0, 2), st.integers(0, 10**10))
    def test_exact_vs_osa_brute_force(self, pool, k, qseed):
        rng = random.Random(qseed)
        query = rng.choice(pool)
        idx = FBFIndex(pool, scheme="numeric", verifier="osa-bitparallel")
        got = idx.search(query, k)
        want = sorted(
            i
            for i, s in enumerate(pool)
            if damerau_levenshtein(query, s) <= k
        )
        assert got == want

    def test_transposition_counts_one(self):
        idx = FBFIndex(["12345"], scheme="numeric", verifier="osa-bitparallel")
        assert idx.search("12354", 1) == [0]


class TestMyersVerifier:
    def test_levenshtein_semantics(self):
        # The Myers verifier counts a transposition as two edits.
        idx = FBFIndex(["12345", "12354"], scheme="numeric", verifier="myers")
        assert idx.search("12345", 1) == [0]
        assert idx.search("12345", 2) == [0, 1]

    @settings(max_examples=20)
    @given(pool_strategy, st.integers(0, 2), st.integers(0, 10**10))
    def test_exact_vs_levenshtein_brute_force(self, pool, k, qseed):
        rng = random.Random(qseed)
        query = rng.choice(pool)
        idx = FBFIndex(pool, scheme="numeric", verifier="myers")
        got = idx.search(query, k)
        want = sorted(
            i for i, s in enumerate(pool) if levenshtein(query, s) <= k
        )
        assert got == want


class TestSearchCollector:
    def test_funnel_conserves_and_orders(self):
        from repro.obs import StatsCollector

        pool = ["12345", "12354", "99999", "123", ""]
        idx = FBFIndex(pool, scheme="numeric")
        c = StatsCollector("probe")
        hits = idx.search("12345", 1, collector=c)
        assert hits == [0, 1]
        assert c.pairs_considered == len(pool)
        assert c.conserved
        assert [s.name for s in c.stages.values()] == ["length", "fbf"]
        # Length windowing drops the length-3 and empty entries before
        # the signature stage ever sees them.
        assert c.stages["length"].tested == len(pool)
        assert c.stages["length"].passed == 3
        assert c.stages["fbf"].tested == 3
        assert c.matched == len(hits)
        assert c.verified == c.survivors

    def test_empty_query_still_accounts(self):
        from repro.obs import StatsCollector

        idx = FBFIndex(["123", "456"], scheme="numeric")
        c = StatsCollector("probe")
        assert idx.search("", 1, collector=c) == []
        assert c.pairs_considered == 2
        assert c.conserved

    def test_collector_does_not_change_results(self):
        from repro.obs import StatsCollector

        pool = ["12345", "12354", "54321"]
        idx = FBFIndex(pool, scheme="numeric")
        assert idx.search("12345", 1, collector=StatsCollector()) == idx.search(
            "12345", 1
        )


class TestCandidateBlocks:
    def test_blocks_cover_all_within_k(self):
        pool = ["12345", "12354", "99999", "1234", ""]
        queries = ["12345", "123", ""]
        idx = FBFIndex(pool, scheme="numeric")
        pairs = set()
        for ii, jj in idx.candidate_blocks(queries, 1):
            pairs.update(zip(ii.tolist(), jj.tolist()))
        for qi, q in enumerate(queries):
            for si, s in enumerate(pool):
                if damerau_levenshtein(q, s) <= 1:
                    assert (qi, si) in pairs, (q, s)

    def test_blocks_include_empty_strings(self):
        # Unlike search(), generation must emit empty-vs-short pairs:
        # whether they match is the verifier's call.
        idx = FBFIndex(["", "1"], scheme="numeric")
        pairs = set()
        for ii, jj in idx.candidate_blocks(["", "1"], 1):
            pairs.update(zip(ii.tolist(), jj.tolist()))
        assert {(0, 0), (0, 1), (1, 0), (1, 1)} <= pairs

    def test_max_pairs_bounds_block_size(self):
        pool = [f"{i:05d}" for i in range(50)]
        idx = FBFIndex(pool, scheme="numeric")
        for ii, jj in idx.candidate_blocks(pool, 1, max_pairs=64):
            assert len(ii) == len(jj) <= 64

    def test_collector_records_generation_funnel(self):
        from repro.obs import StatsCollector

        pool = [f"{i:05d}" for i in range(30)]
        idx = FBFIndex(pool, scheme="numeric")
        c = StatsCollector("gen")
        emitted = sum(
            len(ii) for ii, _ in idx.candidate_blocks(pool, 1, collector=c)
        )
        assert c.stages["fbf"].passed == emitted
        assert c.stages["length"].tested == len(pool) * len(pool)


class TestGenerationAndPacking:
    def test_generation_counts_adds(self):
        idx = FBFIndex(scheme="numeric")
        assert idx.generation == 0
        idx.add("123")
        idx.extend(["456", "789"])
        assert idx.generation == 3

    def test_construction_batch_counts(self):
        idx = FBFIndex(["123", "456"], scheme="numeric")
        assert idx.generation == 2

    def test_dirty_until_packed(self):
        idx = FBFIndex(scheme="numeric")
        idx.add("12345")
        assert idx.dirty
        idx.pack()
        assert not idx.dirty

    def test_search_packs_only_touched_buckets(self):
        idx = FBFIndex(scheme="numeric")
        idx.add("12345")
        idx.add("9999999999")
        idx.search("12346", 1)
        assert idx.dirty  # the length-10 bucket is still pending
        idx.pack()
        assert not idx.dirty

    def test_search_does_not_bump_generation(self):
        idx = FBFIndex(["12345"], scheme="numeric")
        gen = idx.generation
        idx.search("12345", 1)
        idx.pack()
        assert idx.generation == gen

    def test_verifier_override_per_query(self):
        idx = FBFIndex(["13245"], scheme="numeric", verifier="osa")
        # One transposition: OSA says 1 edit, Levenshtein (myers) says 2.
        assert idx.search("12345", 1) == [0]
        assert idx.search("12345", 1, verifier="myers") == []
        assert idx.search("12345", 1) == [0]  # configured default intact

    def test_verifier_override_validated(self):
        idx = FBFIndex(["12345"], scheme="numeric")
        with pytest.raises(ValueError, match="verifier"):
            idx.search("12345", 1, verifier="bogus")


class TestPackedRoundtrip:
    def test_from_packed_answers_identically(self):
        rng = random.Random(5)
        pool = build_ssn_pool(60, rng)
        idx = FBFIndex(pool, scheme="numeric")
        idx.add("123450000")
        clone = FBFIndex.from_packed(
            list(pool) + ["123450000"],
            idx.packed_buckets(),
            scheme=idx.scheme,
            verifier=idx.verifier,
        )
        assert not clone.dirty
        for q in pool[:10] + ["123450000", ""]:
            assert clone.search(q, 1) == idx.search(q, 1)

    def test_from_packed_rejects_partial_coverage(self):
        idx = FBFIndex(["123", "4567"], scheme="numeric")
        buckets = [b for b in idx.packed_buckets() if b[0] == 3]
        with pytest.raises(ValueError, match="cover"):
            FBFIndex.from_packed(
                ["123", "4567"], buckets, scheme=idx.scheme
            )

    def test_from_packed_rejects_wrong_scheme_width(self):
        from repro.core.signatures import scheme_for

        idx = FBFIndex(["abc"], scheme="alpha")
        with pytest.raises(ValueError, match="scheme"):
            FBFIndex.from_packed(
                ["abc"],
                idx.packed_buckets(),
                scheme=scheme_for("numeric"),
            )
