"""Prefix + position q-gram filter: tokenization, completeness, shorts.

Mirrors the PASS-JOIN suite: the exhaustive small-universe sweeps pin
the two OSA-specific deviations — the widened ``(q + 1) * k + 1``
prefix (a transposition destroys up to ``q + 1`` padded grams) and the
short-string fallback through per-length id tables.
"""

import itertools

import pytest

from repro.core.prefix import PrefixQgramIndex, positional_qgrams
from repro.distance.damerau import damerau_levenshtein
from repro.distance.qgram import PAD_CHAR


def universe(alphabet, max_len):
    return [
        "".join(t)
        for n in range(max_len + 1)
        for t in itertools.product(alphabet, repeat=n)
    ]


class TestPositionalQgrams:
    def test_padded_occurrences(self):
        occs = positional_qgrams("ab", 2)
        assert occs == [
            (PAD_CHAR + "a", 0),
            ("ab", 1),
            ("b" + PAD_CHAR, 2),
        ]

    def test_empty_string_yields_one_pad_gram(self):
        # n + q - 1 occurrences, same as qgram_profile's padding
        # convention — the empty string contributes the all-pad gram.
        assert positional_qgrams("", 2) == [(PAD_CHAR * 2, 0)]

    def test_q1_is_characters(self):
        assert positional_qgrams("ab", 1) == [("a", 0), ("b", 1)]

    def test_rejects_bad_q(self):
        with pytest.raises(ValueError, match="q must be >= 1"):
            positional_qgrams("a", 0)


class TestCompleteness:
    @pytest.mark.parametrize("k", [0, 1, 2])
    def test_dense_universe(self, k):
        strings = universe("ab", 4)
        index = PrefixQgramIndex(strings, k=k)
        emitted = {
            (int(qi), int(sid))
            for qs, ids in index.candidate_blocks(strings)
            for qi, sid in zip(qs, ids)
        }
        for qi, q in enumerate(strings):
            for sid, s in enumerate(strings):
                if damerau_levenshtein(q, s) <= k:
                    assert (qi, sid) in emitted, (
                        f"missed {q!r} ~ {s!r} at k={k}"
                    )

    def test_boundary_transposition(self):
        # One transposition rewrites every interior gram of a 2-char
        # string; the (q + 1) * k + 1 prefix still has to surface it.
        index = PrefixQgramIndex(["AB"], k=1)
        assert 0 in index.candidates("BA")

    @pytest.mark.parametrize("k", [1, 2])
    def test_unicode(self, k):
        strings = ["", "a", "é漢字", "漢é字", "naïve", "naive", "nàive", "AB"]
        index = PrefixQgramIndex(strings, k=k)
        probes = strings + ["BAX", "éAB", "n ive"]
        for q in probes:
            got = set(index.candidates(q).tolist())
            for sid, s in enumerate(strings):
                if damerau_levenshtein(q, s) <= k:
                    assert sid in got, f"missed {q!r} ~ {s!r} at k={k}"

    def test_short_strings_fall_back_to_length_tables(self):
        # "" and "a" carry too few grams for the prefix argument; they
        # must still reach (and be reachable from) the long side.
        strings = ["", "a", "ab", "abc", "abcd"]
        index = PrefixQgramIndex(strings, k=1)
        assert set(index.candidates("").tolist()) >= {0, 1}
        assert 1 in index.candidates("ab")  # long query, short indexed
        assert 2 in index.candidates("a")  # short query, long indexed

    def test_k0_only_window(self):
        index = PrefixQgramIndex(["abc", "abd", "xyz"], k=0)
        got = set(index.candidates("abc").tolist())
        assert 0 in got
        assert 2 not in got


class TestBlocks:
    def test_blocks_are_deduplicated(self):
        strings = universe("ab", 3)
        index = PrefixQgramIndex(strings, k=2)
        seen = set()
        for qs, ids in index.candidate_blocks(strings):
            for pair in zip(qs.tolist(), ids.tolist()):
                assert pair not in seen, f"duplicate candidate {pair}"
                seen.add(pair)

    def test_max_pairs_caps_blocks(self):
        strings = universe("ab", 3)
        index = PrefixQgramIndex(strings, k=1)
        blocks = list(index.candidate_blocks(strings, max_pairs=32))
        assert len(blocks) > 1
        capped = {
            (int(qi), int(sid))
            for qs, ids in blocks
            for qi, sid in zip(qs, ids)
        }
        full = {
            (int(qi), int(sid))
            for qs, ids in index.candidate_blocks(strings)
            for qi, sid in zip(qs, ids)
        }
        assert capped == full

    def test_empty_sides(self):
        assert list(PrefixQgramIndex([], k=1).candidate_blocks(["a"])) == []
        assert list(PrefixQgramIndex(["a"], k=1).candidate_blocks([])) == []

    def test_rejects_negative_k(self):
        with pytest.raises(ValueError, match="k must be >= 0"):
            PrefixQgramIndex(["a"], k=-1)
