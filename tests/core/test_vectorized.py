"""Equivalence tests: batch signature engines vs scalar Algorithms 4-5."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.signatures import (
    alnum_signature,
    alpha_signature,
    diff_bits,
    num_signature,
    scheme_for,
)
from repro.core.vectorized import (
    alnum_signatures_batch,
    alpha_signatures_batch,
    fbf_candidates,
    length_candidates,
    num_signatures_batch,
    pairwise_diff_bits,
    signatures_for_scheme,
)

alpha_strings = st.lists(st.text(alphabet="ABCdef -'", max_size=12), min_size=1, max_size=10)
digit_strings = st.lists(st.text(alphabet="0123456789-", max_size=12), min_size=1, max_size=10)
mixed_strings = st.lists(st.text(alphabet="AB12 ", max_size=12), min_size=1, max_size=10)


class TestBatchSignatures:
    @given(digit_strings)
    def test_numeric_matches_scalar(self, strings):
        batch = num_signatures_batch(strings)
        assert batch.dtype == np.uint32
        assert [int(x) for x in batch] == [num_signature(s) for s in strings]

    @given(alpha_strings, st.integers(1, 3), st.booleans())
    def test_alpha_matches_scalar(self, strings, levels, extended):
        batch = alpha_signatures_batch(strings, levels, extended=extended)
        assert batch.shape == (len(strings), levels)
        for row, s in zip(batch, strings):
            assert tuple(int(x) for x in row) == alpha_signature(
                s, levels, extended=extended
            )

    @given(mixed_strings, st.integers(1, 3))
    def test_alnum_matches_scalar(self, strings, levels):
        batch = alnum_signatures_batch(strings, levels)
        for row, s in zip(batch, strings):
            assert tuple(int(x) for x in row) == alnum_signature(s, levels)

    def test_invalid_levels(self):
        with pytest.raises(ValueError):
            alpha_signatures_batch(["A"], 0)

    def test_empty_strings(self):
        batch = alpha_signatures_batch(["", ""], 2)
        assert (batch == 0).all()

    @given(mixed_strings)
    def test_scheme_dispatch(self, strings):
        for kind, levels in (("numeric", 2), ("alpha", 2), ("alnum", 2)):
            scheme = scheme_for(kind, levels)
            batch = signatures_for_scheme(strings, scheme)
            scalar = scheme.signatures(strings)
            got = [tuple(int(x) for x in np.atleast_1d(row)) for row in batch]
            assert got == scalar

    def test_custom_scheme_fallback(self):
        from repro.core.signatures import SignatureScheme

        scheme = SignatureScheme(
            "custom", width=1, generate=lambda s: (len(s) & 0xFF,)
        )
        batch = signatures_for_scheme(["A", "BB"], scheme)
        assert batch.tolist() == [[1], [2]]


class TestPairwiseDiffBits:
    @given(digit_strings, digit_strings)
    def test_matches_scalar_numeric(self, left, right):
        L = num_signatures_batch(left)
        R = num_signatures_batch(right)
        mat = pairwise_diff_bits(L, R)
        assert mat.shape == (len(left), len(right))
        for i, s in enumerate(left):
            for j, t in enumerate(right):
                assert int(mat[i, j]) == diff_bits(
                    (num_signature(s),), (num_signature(t),)
                )

    def test_width_mismatch(self):
        with pytest.raises(ValueError):
            pairwise_diff_bits(
                np.zeros((2, 1), dtype=np.uint32), np.zeros((2, 2), dtype=np.uint32)
            )

    def test_multiword(self):
        left = ["123 OAK", "99 ELM"]
        L = alnum_signatures_batch(left, 2)
        mat = pairwise_diff_bits(L, L)
        assert mat[0, 0] == 0 and mat[1, 1] == 0
        assert mat[0, 1] == mat[1, 0] > 0


class TestCandidates:
    @given(digit_strings, digit_strings, st.integers(0, 6), st.integers(1, 4))
    def test_fbf_candidates_match_threshold(self, left, right, bound, chunk):
        L = num_signatures_batch(left)
        R = num_signatures_batch(right)
        ii, jj = fbf_candidates(L, R, bound, chunk_rows=chunk)
        mat = pairwise_diff_bits(L, R)
        expected = {(i, j) for i in range(len(left)) for j in range(len(right))
                    if mat[i, j] <= bound}
        assert set(zip(ii.tolist(), jj.tolist())) == expected

    def test_fbf_candidates_empty_inputs(self):
        empty = np.zeros((0, 1), dtype=np.uint32)
        ii, jj = fbf_candidates(empty, empty, 2)
        assert len(ii) == 0 and len(jj) == 0

    @given(
        st.lists(st.integers(0, 10), min_size=1, max_size=8),
        st.lists(st.integers(0, 10), min_size=1, max_size=8),
        st.integers(0, 3),
    )
    def test_length_candidates(self, ll, rl, k):
        ii, jj = length_candidates(np.array(ll), np.array(rl), k)
        expected = {
            (i, j)
            for i in range(len(ll))
            for j in range(len(rl))
            if abs(ll[i] - rl[j]) <= k
        }
        assert set(zip(ii.tolist(), jj.tolist())) == expected
