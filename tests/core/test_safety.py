"""Property tests for the FBF safety bound (the paper's Section 4 proof).

These are the reproduction's most important tests: if any of them fails,
FBF is not a *safe* filter and the entire "zero accuracy loss" claim
collapses.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.filters import FBFFilter, FilterChain, LengthFilter
from repro.core.signatures import (
    alnum_signature,
    alpha_signature,
    diff_bits,
    num_signature,
    scheme_for,
)
from repro.distance.damerau import damerau_levenshtein
from repro.distance.pruned import pdl

digits = st.text(alphabet="0123456789", max_size=11)
letters = st.text(alphabet="ABCDEF", max_size=11)
mixed = st.text(alphabet="AB12 -", max_size=12)


class TestDiffBitsBound:
    """diff_bits(sig(s), sig(t)) <= 2 * OSA(s, t), every scheme."""

    @given(digits, digits)
    def test_numeric(self, s, t):
        m, n = (num_signature(s),), (num_signature(t),)
        assert diff_bits(m, n) <= 2 * damerau_levenshtein(s, t)

    @given(letters, letters, st.integers(1, 3))
    def test_alpha(self, s, t, levels):
        m = alpha_signature(s, levels)
        n = alpha_signature(t, levels)
        assert diff_bits(m, n) <= 2 * damerau_levenshtein(s, t)

    @given(mixed, mixed, st.integers(1, 3))
    def test_alnum(self, s, t, levels):
        m = alnum_signature(s, levels)
        n = alnum_signature(t, levels)
        assert diff_bits(m, n) <= 2 * damerau_levenshtein(s, t)

    @given(letters, letters, st.integers(1, 3))
    def test_alpha_extended_with_slack(self, s, t, levels):
        # Indicator bits may add at most `slack` extra differing bits.
        scheme = scheme_for("alpha", levels, extended=True)
        d = diff_bits(scheme.signature(s), scheme.signature(t))
        assert d <= 2 * damerau_levenshtein(s, t) + scheme.slack


class TestFilterSafety:
    """A filter must never reject a pair PDL would accept."""

    @given(
        st.lists(st.text(alphabet="0123456789", min_size=1, max_size=10), min_size=1, max_size=6),
        st.lists(st.text(alphabet="0123456789", min_size=1, max_size=10), min_size=1, max_size=6),
        st.integers(0, 3),
    )
    def test_fbf_numeric(self, left, right, k):
        f = FBFFilter(k, "numeric")
        f.prepare(left, right)
        for i, s in enumerate(left):
            for j, t in enumerate(right):
                if pdl(s, t, k):
                    assert f.passes(i, j), (s, t, k)

    @given(
        st.lists(st.text(alphabet="ABCDE", min_size=1, max_size=9), min_size=1, max_size=6),
        st.lists(st.text(alphabet="ABCDE", min_size=1, max_size=9), min_size=1, max_size=6),
        st.integers(0, 3),
    )
    def test_fbf_alpha(self, left, right, k):
        f = FBFFilter(k, scheme_for("alpha", 2))
        f.prepare(left, right)
        for i, s in enumerate(left):
            for j, t in enumerate(right):
                if pdl(s, t, k):
                    assert f.passes(i, j)

    @given(
        st.lists(st.text(alphabet="AB", min_size=1, max_size=8), min_size=1, max_size=6),
        st.lists(st.text(alphabet="AB", min_size=1, max_size=8), min_size=1, max_size=6),
        st.integers(0, 3),
    )
    def test_length_filter(self, left, right, k):
        f = LengthFilter(k)
        f.prepare(left, right)
        for i, s in enumerate(left):
            for j, t in enumerate(right):
                if damerau_levenshtein(s, t) <= k:
                    assert f.passes(i, j)

    @given(
        st.lists(st.text(alphabet="ABC", min_size=1, max_size=8), min_size=1, max_size=5),
        st.integers(1, 2),
    )
    def test_chain_safety(self, strings, k):
        chain = FilterChain([LengthFilter(k), FBFFilter(k, scheme_for("alpha", 2))])
        chain.prepare(strings, strings)
        for i, s in enumerate(strings):
            for j, t in enumerate(strings):
                if pdl(s, t, k):
                    assert chain.passes(i, j)


class TestSingleEditWorstCases:
    """The per-edit bit budget from the Section 4 case analysis."""

    @given(digits.filter(lambda s: len(s) >= 2))
    def test_transposition_zero_bits(self, s):
        # Swapping adjacent characters never changes the multiset.
        t = s[1] + s[0] + s[2:]
        assert diff_bits((num_signature(s),), (num_signature(t),)) == 0

    @given(digits.filter(bool), st.integers(0, 10))
    def test_deletion_at_most_one_bit(self, s, pos):
        pos = pos % len(s)
        t = s[:pos] + s[pos + 1 :]
        assert diff_bits((num_signature(s),), (num_signature(t),)) <= 1

    @given(digits, st.integers(0, 10), st.sampled_from("0123456789"))
    def test_insertion_at_most_one_bit(self, s, pos, ch):
        pos = min(pos, len(s))
        t = s[:pos] + ch + s[pos:]
        assert diff_bits((num_signature(s),), (num_signature(t),)) <= 1

    @given(digits.filter(bool), st.integers(0, 10), st.sampled_from("0123456789"))
    def test_substitution_at_most_two_bits(self, s, pos, ch):
        pos = pos % len(s)
        t = s[:pos] + ch + s[pos + 1 :]
        assert diff_bits((num_signature(s),), (num_signature(t),)) <= 2
