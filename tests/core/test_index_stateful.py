"""Stateful property testing of the FBF index.

A hypothesis rule-based state machine interleaves adds and searches and
checks the index against a brute-force model after every step — the
strongest form of the incremental-correctness guarantee the daily-update
scenario relies on.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core.index import FBFIndex
from repro.distance.damerau import damerau_levenshtein

strings = st.text(alphabet="012345", min_size=1, max_size=8)


class IndexMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.index = FBFIndex(scheme="numeric")
        self.model: list[str] = []

    @rule(s=strings)
    def add(self, s):
        sid = self.index.add(s)
        assert sid == len(self.model)
        self.model.append(s)

    @rule(s=strings, k=st.integers(0, 2))
    def search(self, s, k):
        got = self.index.search(s, k)
        want = sorted(
            i
            for i, t in enumerate(self.model)
            if damerau_levenshtein(s, t) <= k
        )
        assert got == want

    @rule(k=st.integers(0, 2), data=st.data())
    def search_existing(self, k, data):
        if not self.model:
            return
        s = data.draw(st.sampled_from(self.model))
        got = self.index.search(s, k)
        assert got == sorted(
            i
            for i, t in enumerate(self.model)
            if damerau_levenshtein(s, t) <= k
        )

    @invariant()
    def sizes_agree(self):
        assert len(self.index) == len(self.model)


TestIndexStateful = IndexMachine.TestCase
TestIndexStateful.settings = settings(
    max_examples=25, stateful_step_count=20, deadline=None
)
