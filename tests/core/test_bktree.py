"""Unit and property tests for the BK-tree baseline."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bktree import BKTree
from repro.distance.damerau import true_damerau_levenshtein
from repro.distance.levenshtein import levenshtein

pool = st.lists(
    st.text(alphabet="ABC1", min_size=1, max_size=8), min_size=1, max_size=18
)


class TestConstruction:
    def test_empty(self):
        tree = BKTree()
        assert len(tree) == 0
        assert tree.search("X", 3) == []

    def test_ids_in_order(self):
        tree = BKTree()
        assert tree.add("AB") == 0
        assert tree.add("CD") == 1
        assert tree[0] == "AB"

    def test_duplicates_share_node(self):
        tree = BKTree(["AA", "AA", "AB"])
        assert tree.search("AA", 0) == [0, 1]

    def test_unknown_metric(self):
        with pytest.raises(ValueError):
            BKTree(metric="osa")

    def test_custom_metric_callable(self):
        tree = BKTree(["AB"], metric=levenshtein)
        assert tree.metric_name == "levenshtein"
        assert tree.search("AB", 0) == [0]


class TestSearch:
    def test_levenshtein_semantics(self):
        tree = BKTree(["SMITH", "SMIHT"])
        # A transposition costs 2 under plain Levenshtein.
        assert tree.search("SMITH", 1) == [0]
        assert tree.search("SMITH", 2) == [0, 1]

    def test_true_damerau_semantics(self):
        tree = BKTree(["SMITH", "SMIHT"], metric="true-damerau")
        assert tree.search("SMITH", 1) == [0, 1]

    def test_negative_k(self):
        with pytest.raises(ValueError):
            BKTree(["A"]).search("A", -1)

    def test_search_strings(self):
        tree = BKTree(["AB", "AC"])
        assert tree.search_strings("AB", 1) == ["AB", "AC"]

    def test_pruning_visits_fewer_nodes(self):
        rng = random.Random(0)
        strings = ["".join(rng.choice("ABCDEFGH") for _ in range(8)) for _ in range(400)]
        tree = BKTree(strings)
        tree.search(strings[0], 1)
        assert tree.last_nodes_visited < len(strings)

    @settings(max_examples=40)
    @given(pool, st.integers(0, 3), st.integers(0, 10**9))
    def test_exact_vs_brute_force_levenshtein(self, strings, k, seed):
        rng = random.Random(seed)
        query = rng.choice(strings)
        tree = BKTree(strings)
        got = tree.search(query, k)
        want = sorted(
            i for i, s in enumerate(strings) if levenshtein(query, s) <= k
        )
        assert got == want

    @settings(max_examples=25)
    @given(pool, st.integers(0, 2), st.integers(0, 10**9))
    def test_exact_vs_brute_force_true_damerau(self, strings, k, seed):
        rng = random.Random(seed)
        query = rng.choice(strings)
        tree = BKTree(strings, metric="true-damerau")
        got = tree.search(query, k)
        want = sorted(
            i
            for i, s in enumerate(strings)
            if true_damerau_levenshtein(query, s) <= k
        )
        assert got == want


class TestSearchCollector:
    def test_funnel_conserves(self):
        from repro.obs import StatsCollector

        pool = ["BOOK", "BOOKS", "CAKE", "CAPE", "CART"]
        tree = BKTree(pool)
        c = StatsCollector("probe")
        hits = tree.search("CAKE", 1, collector=c)
        assert c.pairs_considered == len(pool)
        assert c.conserved
        assert c.matched == len(hits)
        # The triangle stage records exactly the strings whose distance
        # was computed; pruning shows up as its rejections.
        tri = c.stages["triangle"]
        assert tri.tested == len(pool)
        assert tri.passed == c.survivors
        assert c.meta["nodes_visited"] >= 1

    def test_pruning_visible_in_counters(self):
        from repro.obs import StatsCollector

        pool = ["A", "AB", "ABC", "ABCD", "ABCDE", "ZZZZZZZZZ"]
        tree = BKTree(pool)
        c = StatsCollector("probe")
        tree.search("A", 1, collector=c)
        assert c.stages["triangle"].rejected > 0

    def test_collector_does_not_change_results(self):
        from repro.obs import StatsCollector

        pool = ["BOOK", "BOOKS", "CAKE"]
        tree = BKTree(pool)
        assert tree.search("BOOK", 1, collector=StatsCollector()) == tree.search(
            "BOOK", 1
        )

    def test_empty_tree_accounts_zero(self):
        from repro.obs import StatsCollector

        c = StatsCollector("probe")
        assert BKTree().search("X", 1, collector=c) == []
        assert c.pairs_considered == 0
        assert c.conserved
