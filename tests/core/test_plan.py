"""The join planner: cost model, overrides, funnel accounting, shims.

The planner's contract has four parts, each covered here:

* **Cost model** — generator/backend picks follow dataset size, ``k``
  and the method's safety profile, and never auto-pick a lossy or
  unsafe pruning plan.
* **Overrides** — explicit names (and instances) are honored even when
  unsafe, and unknown names fail loudly.
* **Funnel accounting** — every plan satisfies the conservation
  invariant, with non-full-product generators appearing as the first
  funnel stage; the Table-3 last-names workload demonstrates the
  index-backed plan touching well under 20% of the product at ``k=1``.
* **Compatibility** — the three pre-planner entry points still work but
  warn ``DeprecationWarning``.
"""

import pytest

import repro
from repro import native
from repro.core.join import JoinResult
from repro.core.matchers import method_registry
from repro.core.plan import (
    BACKEND_NAMES,
    EDIT_BOUNDED,
    GENERATOR_FACTORIES,
    GENERATOR_NAMES,
    GENERATOR_SUMMARIES,
    AllPairsGenerator,
    BlockingKeyGenerator,
    FBFIndexGenerator,
    JoinPlanner,
    LengthBucketGenerator,
    PassJoinGenerator,
    PrefixQgramGenerator,
    join,
)
from repro.data.datasets import dataset_for_family
from repro.obs import StatsCollector

REGISTRY = method_registry()


@pytest.fixture(scope="module")
def ssn_pair():
    return dataset_for_family("SSN", 40, seed=9)


@pytest.fixture(scope="module")
def ln_pair():
    return dataset_for_family("LN", 300, seed=3)


def _fake_strings(n: int) -> list[str]:
    # plan() never touches string contents, only counts — cheap inputs.
    return [f"{i:09d}" for i in range(n)]


#: what auto picks above the scalar cutoff depends on whether a
#: compiled kernel provider loaded in this environment
_DENSE_BACKEND = "native" if native.available() else "vectorized"


class TestCostModel:
    def test_small_product_scalar_all_pairs(self):
        p = JoinPlanner(_fake_strings(100), _fake_strings(100), k=1)
        plan = p.plan("FPDL")
        assert (plan.generator.name, plan.backend.name) == ("all-pairs", "scalar")

    def test_medium_product_vectorized_all_pairs(self):
        p = JoinPlanner(_fake_strings(1000), _fake_strings(1000), k=1)
        plan = p.plan("FPDL")
        assert (plan.generator.name, plan.backend.name) == (
            "all-pairs",
            _DENSE_BACKEND,
        )

    def test_large_product_picks_index(self):
        p = JoinPlanner(_fake_strings(1100), _fake_strings(1100), k=1)
        plan = p.plan("FPDL")
        assert (plan.generator.name, plan.backend.name) == (
            "fbf-index",
            _DENSE_BACKEND,
        )

    def test_large_k_disables_index(self):
        p = JoinPlanner(_fake_strings(1100), _fake_strings(1100), k=5)
        assert p.plan("FPDL").generator.name == "all-pairs"

    def test_unprunable_method_stays_all_pairs(self):
        # Jaro bounds neither length nor FBF bits: no pruning generator
        # is safe, whatever the product.
        p = JoinPlanner(_fake_strings(1100), _fake_strings(1100), k=1)
        assert p.plan("Jaro").generator.name == "all-pairs"

    def test_length_only_method_gets_length_bucket(self):
        # LF filters on length but carries no FBF filter or edit-bounded
        # verifier: every index generator would prune unsafely, buckets
        # are exact.  Lengths must vary for the window to prune at all —
        # on same-length data the dense product is genuinely cheaper.
        strings = [f"{i:0{6 + i % 12}d}" for i in range(1100)]
        p = JoinPlanner(strings, list(strings), k=1)
        assert p.plan("LF").generator.name == "length-bucket"

    def test_multiprocess_never_auto_picked(self):
        for n in (100, 1100):
            p = JoinPlanner(_fake_strings(n), _fake_strings(n), k=1)
            assert p.plan("FPDL").backend.name != "multiprocess"

    def test_blocking_never_auto_picked(self):
        for method in REGISTRY:
            p = JoinPlanner(_fake_strings(1100), _fake_strings(1100), k=1)
            assert not p.plan(method).generator.name.startswith("blocking")

    def test_plan_describe_mentions_shape(self):
        p = JoinPlanner(_fake_strings(100), _fake_strings(100), k=1)
        text = p.plan("FPDL").describe()
        assert "FPDL" in text and "all-pairs" in text and "100 x 100" in text


class TestGeneratorRegistry:
    def test_registry_is_the_name_source(self):
        assert GENERATOR_NAMES == tuple(GENERATOR_FACTORIES)
        assert set(GENERATOR_SUMMARIES) == set(GENERATOR_NAMES)
        assert all(GENERATOR_SUMMARIES.values())

    def test_planner_instantiates_lazily_and_caches(self):
        p = JoinPlanner(_fake_strings(10), _fake_strings(10), k=1)
        gen = p.generator("pass-join")
        assert isinstance(gen, PassJoinGenerator)
        assert p.generator("pass-join") is gen
        assert p.generator("bogus") is None

    def test_default_blocking_is_soundex(self):
        p = JoinPlanner(["SMITH"], ["SMYTH"], k=1)
        gen = p.generator("blocking")
        assert not gen.lossless
        assert gen.name.startswith("blocking")

    def test_costs_cover_every_generator(self):
        p = JoinPlanner(_fake_strings(50), _fake_strings(50), k=1)
        costs = p.generator_costs("FPDL")
        assert [c.name for c in costs] != []
        assert {c.name for c in costs} == set(GENERATOR_NAMES)
        # sorted ascending, lossy last at +inf and never safe
        values = [c.cost for c in costs]
        assert values == sorted(values)
        by_name = {c.name: c for c in costs}
        assert by_name["blocking"].cost == float("inf")
        assert not by_name["blocking"].safe
        assert all(c.detail for c in costs)

    def test_unsafe_methods_scored_but_not_safe(self):
        p = JoinPlanner(_fake_strings(50), _fake_strings(50), k=1)
        by_name = {c.name: c for c in p.generator_costs("Jaro")}
        assert by_name["all-pairs"].safe
        assert not by_name["pass-join"].safe
        assert not by_name["prefix"].safe
        assert not by_name["fbf-index"].safe


class TestPartitionRouting:
    """The cost model routes between the partition indexes and the
    signature walk by sampled collision counts."""

    @pytest.fixture(scope="class")
    def ln_names(self):
        pair = dataset_for_family("LN", 2000, seed=3)
        return list(pair.clean), list(pair.error)

    def test_k1_prefers_passjoin_over_window_walks(self, ln_names):
        clean, err = ln_names
        p = JoinPlanner(err, clean, k=1, collapse="off")
        by_name = {c.name: c for c in p.generator_costs("FPDL")}
        assert by_name["pass-join"].cost < by_name["fbf-index"].cost
        assert by_name["pass-join"].cost < by_name["length-bucket"].cost

    def test_k2_collision_blowup_is_priced_in(self, ln_names):
        # Short name segments lose selectivity at k=2: the sampled
        # collision count must price pass-join above the signature walk
        # (at n=1e5 this is a 5e8-candidate difference).
        clean, err = ln_names
        p = JoinPlanner(err, clean, k=2, collapse="off")
        by_name = {c.name: c for c in p.generator_costs("FPDL")}
        assert by_name["fbf-index"].cost < by_name["pass-join"].cost
        assert by_name["fbf-index"].cost < by_name["prefix"].cost

    def test_reason_names_the_winner_and_its_cost(self, ln_names):
        clean, err = ln_names
        p = JoinPlanner(err, clean, k=1, collapse="off")
        plan = p.plan("FPDL")
        assert "cost model" in plan.reason
        assert plan.generator.name in plan.reason


class TestSafety:
    @pytest.mark.parametrize("method", sorted(REGISTRY))
    def test_safety_matches_spec(self, method):
        spec = REGISTRY[method]
        bounded = spec.verifier in EDIT_BOUNDED
        assert AllPairsGenerator().is_safe_for(spec)
        assert LengthBucketGenerator().is_safe_for(spec) == (
            bounded or "length" in spec.filters
        )
        assert FBFIndexGenerator().is_safe_for(spec) == (
            bounded or ("length" in spec.filters and "fbf" in spec.filters)
        )

    def test_blocking_is_never_safe(self):
        class _Null:
            name = "null"

            def pairs(self, left, right):
                return iter(())

        gen = BlockingKeyGenerator(_Null())
        assert not gen.lossless
        for spec in REGISTRY.values():
            assert not gen.is_safe_for(spec)


class TestOverrides:
    def test_unknown_generator_raises(self, ssn_pair):
        p = JoinPlanner(ssn_pair.clean, ssn_pair.error, k=1)
        with pytest.raises(ValueError, match="unknown generator"):
            p.plan("FPDL", generator="bogus")

    def test_unknown_generator_lists_registered_names(self, ssn_pair):
        p = JoinPlanner(ssn_pair.clean, ssn_pair.error, k=1)
        with pytest.raises(ValueError) as exc:
            p.plan("FPDL", generator="bogus")
        assert ", ".join(sorted(GENERATOR_NAMES)) in str(exc.value)

    def test_unsafe_override_warning_names_the_requirement(
        self, ssn_pair, caplog
    ):
        p = JoinPlanner(ssn_pair.clean, ssn_pair.error, k=1)
        with caplog.at_level("WARNING", logger="repro.core.plan"):
            p.plan("Jaro", generator="pass-join")
        assert any(
            "requires an edit-bounded verifier" in rec.message
            for rec in caplog.records
        )

    def test_unknown_backend_raises(self, ssn_pair):
        p = JoinPlanner(ssn_pair.clean, ssn_pair.error, k=1)
        with pytest.raises(ValueError, match="unknown backend"):
            p.plan("FPDL", backend="bogus")

    def test_unknown_method_raises(self, ssn_pair):
        p = JoinPlanner(ssn_pair.clean, ssn_pair.error, k=1)
        with pytest.raises(ValueError, match="unknown method"):
            p.plan("NOPE")

    def test_negative_k_raises(self):
        with pytest.raises(ValueError, match="k must be"):
            JoinPlanner(["a"], ["b"], k=-1)

    def test_explicit_names_honored(self, ssn_pair):
        p = JoinPlanner(ssn_pair.clean, ssn_pair.error, k=1)
        plan = p.plan("FPDL", generator="length-bucket", backend="vectorized")
        assert (plan.generator.name, plan.backend.name) == (
            "length-bucket",
            "vectorized",
        )
        assert plan.reason == "explicit"

    def test_generator_instance_honored(self, ssn_pair):
        p = JoinPlanner(ssn_pair.clean, ssn_pair.error, k=1)
        gen = LengthBucketGenerator()
        assert p.plan("FPDL", generator=gen).generator is gen

    def test_unsafe_override_warns_but_runs(self, ssn_pair, caplog):
        # Jaro under the FBF index may drop matches; the explicit
        # override is for recall experiments, so it runs with a warning.
        p = JoinPlanner(ssn_pair.clean, ssn_pair.error, k=1, record_matches=True)
        ref = p.run("Jaro", generator="all-pairs", backend="scalar")
        with caplog.at_level("WARNING", logger="repro.core.plan"):
            pruned = p.run("Jaro", generator="fbf-index", backend="scalar")
        assert any("not safe" in rec.message for rec in caplog.records)
        assert set(pruned.matches) <= set(ref.matches)


class TestRun:
    def test_result_carries_plan_names(self, ssn_pair):
        p = JoinPlanner(ssn_pair.clean, ssn_pair.error, k=1)
        r = p.run("FPDL", generator="fbf-index", backend="vectorized")
        assert isinstance(r, JoinResult)
        assert (r.generator, r.backend) == ("fbf-index", "vectorized")

    @pytest.mark.parametrize("generator", ["all-pairs", "length-bucket", "fbf-index"])
    @pytest.mark.parametrize("backend", ["scalar", "vectorized"])
    def test_join_entry_point_runs_every_combo(self, ssn_pair, generator, backend):
        ref = join(
            ssn_pair.clean, ssn_pair.error, "FPDL", k=1,
            generator="all-pairs", backend="scalar", record_matches=True,
        )
        r = join(
            ssn_pair.clean, ssn_pair.error, "FPDL", k=1,
            generator=generator, backend=backend, record_matches=True,
        )
        assert (r.generator, r.backend) == (generator, backend)
        assert sorted(r.matches) == sorted(ref.matches)

    def test_join_multiprocess_combo(self, ssn_pair):
        ref = join(
            ssn_pair.clean, ssn_pair.error, "FPDL", k=1,
            generator="all-pairs", backend="scalar", record_matches=True,
        )
        r = join(
            ssn_pair.clean, ssn_pair.error, "FPDL", k=1,
            generator="fbf-index", backend="multiprocess",
            workers=2, record_matches=True,
        )
        assert (r.generator, r.backend) == ("fbf-index", "multiprocess")
        assert sorted(r.matches) == sorted(ref.matches)

    def test_join_is_packaged_at_top_level(self, ssn_pair):
        r = repro.join(ssn_pair.clean, ssn_pair.error, "FPDL", k=1)
        assert r.match_count > 0

    def test_dedupe_diagonal_survives_planning(self, ssn_pair):
        # Self-join: the identity diagonal must be counted by every plan.
        r = join(
            ssn_pair.clean, ssn_pair.clean, "FPDL", k=1,
            generator="fbf-index", backend="vectorized",
        )
        assert r.diagonal_matches == ssn_pair.n

    def test_blocking_generator_is_subset(self, ssn_pair):
        from repro.distance.soundex import soundex
        from repro.linkage.blocking import StandardBlocking

        gen = BlockingKeyGenerator(StandardBlocking(key=soundex))
        assert gen.name.startswith("blocking:")
        ref = join(
            ssn_pair.clean, ssn_pair.error, "DL", k=1,
            generator="all-pairs", backend="scalar", record_matches=True,
        )
        blocked = join(
            ssn_pair.clean, ssn_pair.error, "DL", k=1,
            generator=gen, backend="scalar", record_matches=True,
        )
        assert blocked.generator == gen.name
        assert set(blocked.matches) <= set(ref.matches)
        assert blocked.pairs_compared <= ref.pairs_compared


class TestFunnel:
    @pytest.mark.parametrize("generator", ["length-bucket", "fbf-index"])
    @pytest.mark.parametrize("backend", ["scalar", "vectorized"])
    def test_pruned_plan_conserves(self, ssn_pair, generator, backend):
        c = StatsCollector("plan")
        p = JoinPlanner(ssn_pair.clean, ssn_pair.error, k=1)
        r = p.run("FPDL", generator=generator, backend=backend, collector=c)
        product = ssn_pair.n * ssn_pair.n
        assert c.pairs_considered == product
        assert c.conserved, (
            f"{generator}/{backend}: {c.pairs_considered} != "
            f"{c.total_rejected} + {c.survivors}"
        )
        assert c.matched == r.match_count
        assert c.meta["generator"] == generator
        assert c.meta["backend"] == backend

    def test_generator_is_first_stage(self, ssn_pair):
        c = StatsCollector("plan")
        p = JoinPlanner(ssn_pair.clean, ssn_pair.error, k=1)
        r = p.run("FPDL", generator="fbf-index", backend="vectorized", collector=c)
        stages = list(c.stages.values())
        assert stages[0].name == "fbf-index"
        assert stages[0].tested == ssn_pair.n * ssn_pair.n
        assert stages[0].passed == r.pairs_compared

    def test_full_product_plan_has_no_generator_stage(self, ssn_pair):
        c = StatsCollector("plan")
        p = JoinPlanner(ssn_pair.clean, ssn_pair.error, k=1)
        p.run("FPDL", generator="all-pairs", backend="scalar", collector=c)
        assert "all-pairs" not in c.stages
        assert c.conserved

    def test_table3_ln_index_prunes_below_20_percent(self, ln_pair):
        # Acceptance: on the Table-3 last-names workload at k=1 the
        # index-backed generator enumerates < 20% of the full product.
        c = StatsCollector("ln")
        p = JoinPlanner(ln_pair.clean, ln_pair.error, k=1, record_matches=True)
        r = p.run("FPDL", generator="fbf-index", backend="vectorized", collector=c)
        product = ln_pair.n * ln_pair.n
        emitted = c.stages["fbf-index"].passed
        assert emitted == r.pairs_compared
        assert emitted < 0.2 * product, (
            f"index emitted {emitted} of {product} pairs "
            f"({emitted / product:.1%})"
        )
        assert c.conserved
        ref = p.run("FPDL", generator="all-pairs", backend="vectorized")
        assert sorted(r.matches) == sorted(ref.matches)


class TestDeprecatedShims:
    """Each shim warns DeprecationWarning exactly once per process."""

    @pytest.fixture(autouse=True)
    def _fresh_warning_registry(self):
        # The shims warn once per process; reset so each test observes
        # its own first (and only) warning regardless of suite order.
        from repro._compat import reset_deprecation_warnings

        reset_deprecation_warnings()
        yield
        reset_deprecation_warnings()

    def test_match_strings_warns(self, ssn_pair):
        from repro.core.join import match_strings
        from repro.core.matchers import build_matcher

        matcher = build_matcher("FPDL", k=1, scheme="numeric")
        with pytest.warns(DeprecationWarning, match="repro.join") as caught:
            r = match_strings(ssn_pair.clean, ssn_pair.error, matcher)
        assert r.match_count > 0
        assert (
            sum(1 for w in caught if w.category is DeprecationWarning) == 1
        )
        assert "match_strings() is deprecated" in str(caught[0].message)

    def test_match_strings_warns_only_once(self, ssn_pair):
        import warnings

        from repro.core.join import match_strings
        from repro.core.matchers import build_matcher

        matcher = build_matcher("FPDL", k=1, scheme="numeric")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            match_strings(ssn_pair.clean, ssn_pair.error, matcher)
            match_strings(ssn_pair.clean, ssn_pair.error, matcher)
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1

    def test_parallel_match_strings_warns(self, ssn_pair):
        from repro.parallel.pool import parallel_match_strings

        with pytest.warns(DeprecationWarning, match="repro.join") as caught:
            r = parallel_match_strings(
                ssn_pair.clean, ssn_pair.error, "FPDL", k=1,
                scheme_kind="numeric", workers=1,
            )
        assert r.backend == "multiprocess"
        assert (
            sum(1 for w in caught if w.category is DeprecationWarning) == 1
        )
        assert "parallel_match_strings() is deprecated" in str(
            caught[0].message
        )

    def test_chunked_join_warns(self, ssn_pair):
        from repro.parallel.chunked import ChunkedJoin, VectorEngine

        with pytest.warns(DeprecationWarning, match="VectorEngine") as caught:
            engine = ChunkedJoin(
                ssn_pair.clean, ssn_pair.error, k=1, scheme_kind="numeric"
            )
        assert isinstance(engine, VectorEngine)
        assert engine.run("FPDL").match_count > 0
        assert (
            sum(1 for w in caught if w.category is DeprecationWarning) == 1
        )
        assert "ChunkedJoin is deprecated" in str(caught[0].message)

    def test_chunked_join_warns_only_once(self, ssn_pair):
        import warnings

        from repro.parallel.chunked import ChunkedJoin

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            ChunkedJoin(ssn_pair.clean, ssn_pair.error, k=1, scheme_kind="numeric")
            ChunkedJoin(ssn_pair.clean, ssn_pair.error, k=1, scheme_kind="numeric")
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1

    def test_names_stay_exported(self):
        assert set(GENERATOR_NAMES) == {
            "all-pairs", "length-bucket", "fbf-index", "pass-join",
            "prefix", "blocking",
        }
        assert set(BACKEND_NAMES) == {
            "scalar", "vectorized", "multiprocess", "hybrid", "native",
        }
