"""Unit tests for FBF signature generation (Algorithms 4-6)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.signatures import (
    ALPHA_DOUBLED_BIT,
    ALPHA_OVERFLOW_BIT,
    SignatureScheme,
    alnum_signature,
    alpha_signature,
    detect_kind,
    diff_bits,
    find_diff_bits,
    num_signature,
    scheme_for,
)

alpha_text = st.text(alphabet="ABCDEFGHIJKLMNOPQRSTUVWXYZ", max_size=15)
digit_text = st.text(alphabet="0123456789", max_size=12)


class TestAlphaSignature:
    def test_paper_figure3(self):
        # Figure 3: "SMITH" sets bits H, I, M, S, T.
        sig = alpha_signature("SMITH")[0]
        expected = sum(1 << (ord(c) - ord("A")) for c in "SMITH")
        assert sig == expected

    def test_case_insensitive(self):
        assert alpha_signature("Smith") == alpha_signature("SMITH")

    def test_non_letters_ignored(self):
        assert alpha_signature("O'BRIEN-X2") == alpha_signature("OBRIENX")

    def test_order_insensitive(self):
        assert alpha_signature("SMITH") == alpha_signature("HTIMS")

    def test_levels_record_repeats(self):
        one = alpha_signature("OTTO", 1)
        two = alpha_signature("OTTO", 2)
        assert bin(one[0]).count("1") == 2  # O, T
        assert bin(two[0]).count("1") == 2
        assert bin(two[1]).count("1") == 2  # second O, second T

    def test_saturation(self):
        # Third occurrence is invisible at levels=2.
        assert alpha_signature("AAA", 2) == alpha_signature("AA", 2)

    def test_empty_string(self):
        assert alpha_signature("") == (0,)
        assert alpha_signature("", 3) == (0, 0, 0)

    def test_invalid_levels(self):
        with pytest.raises(ValueError):
            alpha_signature("A", 0)

    def test_extended_overflow_bit(self):
        sig = alpha_signature("AAA", 1, extended=True)
        assert sig[-1] >> ALPHA_OVERFLOW_BIT & 1 == 1
        sig = alpha_signature("ABC", 1, extended=True)
        assert sig[-1] >> ALPHA_OVERFLOW_BIT & 1 == 0

    def test_extended_doubled_bit(self):
        assert alpha_signature("OTTO", 2, extended=True)[-1] >> ALPHA_DOUBLED_BIT & 1
        assert not (
            alpha_signature("TOTO", 2, extended=True)[-1] >> ALPHA_DOUBLED_BIT & 1
        )

    def test_extended_bits_outside_letter_range(self):
        # Indicators live above bit 25 and never collide with letters.
        assert ALPHA_OVERFLOW_BIT > 25 and ALPHA_DOUBLED_BIT > 25

    @given(alpha_text, st.integers(1, 3))
    def test_width_is_levels(self, s, levels):
        assert len(alpha_signature(s, levels)) == levels

    @given(alpha_text)
    def test_level_words_nested(self, s):
        # A letter seen twice was also seen once: word j+1 ⊆ word j.
        sig = alpha_signature(s, 3)
        assert sig[1] & ~sig[0] == 0
        assert sig[2] & ~sig[1] == 0

    @given(alpha_text)
    def test_popcount_bounded_by_length(self, s):
        sig = alpha_signature(s, 3)
        assert sum(bin(w).count("1") for w in sig) <= len(s)


class TestNumSignature:
    def test_paper_figure4(self):
        # Figure 4: "8005551212" -> digits 0(x2) 1(x2) 2(x2) 5(x3) 8(x1).
        sig = num_signature("8005551212")
        expected = 0
        for digit, count in {0: 2, 1: 2, 2: 2, 5: 3, 8: 1}.items():
            for j in range(count):
                expected |= 1 << (3 * digit + j)
        assert sig == expected

    def test_separators_ignored(self):
        assert num_signature("800-555-1212") == num_signature("8005551212")

    def test_saturates_at_three(self):
        assert num_signature("3333") == num_signature("333")

    def test_paper_phone_example(self):
        # Section 3: FBF difference between 213-333-3333 and
        # 213-333-4444 is 3 (three 4s recorded, 3s saturate identically).
        m = (num_signature("213-333-3333"),)
        n = (num_signature("213-333-4444"),)
        assert find_diff_bits(m, n, ) == 3

    def test_fits_in_30_bits(self):
        assert num_signature("0123456789" * 3) < (1 << 30)

    def test_empty(self):
        assert num_signature("") == 0
        assert num_signature("abc") == 0

    @given(digit_text)
    def test_order_insensitive(self, s):
        assert num_signature(s) == num_signature("".join(sorted(s)))

    @given(digit_text)
    def test_popcount_bounded(self, s):
        assert bin(num_signature(s)).count("1") <= min(len(s), 30)


class TestAlnumSignature:
    def test_width(self):
        assert len(alnum_signature("A1", 2)) == 3

    def test_combines_both(self):
        sig = alnum_signature("A1", 1)
        assert sig[0] == 1  # bit for A
        assert sig[1] == 1 << 3  # digit 1, first occurrence at bit 3*1+0

    def test_address_example(self):
        sig = alnum_signature("123 MAIN ST", 2)
        assert sig[2] == num_signature("123")
        assert sig[0] == alpha_signature("MAINST", 2)[0]


class TestDiffBits:
    def test_zero_for_identical(self):
        m = alnum_signature("123 OAK AVE", 2)
        assert find_diff_bits(m, m) == 0
        assert diff_bits(m, m) == 0

    def test_agreement_of_implementations(self):
        m = alnum_signature("123 OAK AVE", 2)
        n = alnum_signature("124 OAK AVE", 2)
        assert find_diff_bits(m, n) == diff_bits(m, n)

    def test_width_mismatch(self):
        with pytest.raises(ValueError):
            find_diff_bits((1, 2), (1,))
        with pytest.raises(ValueError):
            diff_bits((1,), (1, 2))

    def test_paper_proof_cases(self):
        # Section 4, single-edit worst cases on numeric strings.
        sig = lambda s: (num_signature(s),)
        assert diff_bits(sig("13245"), sig("12345")) == 0  # transposition
        assert diff_bits(sig("123456"), sig("12345")) == 1  # delete
        assert diff_bits(sig("1234"), sig("12345")) == 1  # insert
        assert diff_bits(sig("12346"), sig("12345")) == 2  # substitution
        # repeated-character case: "1234566" vs "123456"
        assert diff_bits(sig("1234566"), sig("123456")) == 1

    @given(digit_text, digit_text)
    def test_symmetry(self, s, t):
        m, n = (num_signature(s),), (num_signature(t),)
        assert diff_bits(m, n) == diff_bits(n, m)


class TestSchemes:
    def test_numeric_scheme(self):
        scheme = scheme_for("numeric")
        assert scheme.width == 1
        assert scheme.signature("555") == (num_signature("555"),)

    def test_alpha_scheme_width(self):
        assert scheme_for("alpha", 2).width == 2

    def test_alnum_scheme_width(self):
        assert scheme_for("alnum", 2).width == 3

    def test_safe_threshold(self):
        assert scheme_for("numeric").safe_threshold(1) == 2
        assert scheme_for("alpha", 2).safe_threshold(2) == 4
        assert scheme_for("alpha", 2, extended=True).safe_threshold(1) == 4

    def test_extended_numeric_rejected(self):
        with pytest.raises(ValueError):
            scheme_for("numeric", extended=True)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            scheme_for("hex")

    def test_width_enforced(self):
        bad = SignatureScheme("bad", width=2, generate=lambda s: (0,))
        with pytest.raises(ValueError):
            bad.signature("X")

    def test_batch(self):
        scheme = scheme_for("numeric")
        sigs = scheme.signatures(["1", "22"])
        assert sigs == [(1 << 3,), (0b011 << 6,)]


class TestDetectKind:
    def test_numeric(self):
        assert detect_kind(["123", "456-789"]) == "numeric"

    def test_alpha(self):
        assert detect_kind(["SMITH", "JONES"]) == "alpha"

    def test_alnum(self):
        assert detect_kind(["123 MAIN ST"]) == "alnum"

    def test_mixed_across_strings(self):
        assert detect_kind(["ABC", "123"]) == "alnum"

    def test_empty_input(self):
        assert detect_kind([]) == "alnum"


class TestSchemeFromName:
    def test_roundtrips_stock_schemes(self):
        from repro.core.signatures import scheme_for, scheme_from_name

        for kind, levels, extended in [
            ("numeric", 2, False),
            ("alpha", 1, False),
            ("alpha", 2, True),
            ("alnum", 2, False),
            ("alnum", 3, True),
        ]:
            scheme = scheme_for(kind, levels, extended=extended)
            revived = scheme_from_name(scheme.name)
            assert revived.name == scheme.name
            assert revived.width == scheme.width
            assert revived.slack == scheme.slack
            assert revived.signature("a1b2") == scheme.signature("a1b2")

    def test_rejects_unknown_names(self):
        import pytest

        from repro.core.signatures import scheme_from_name

        for bad in ("", "alpha", "alphax", "alpha0", "custom", "alnum-2"):
            with pytest.raises(ValueError):
                scheme_from_name(bad)
