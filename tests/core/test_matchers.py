"""Unit tests for the method-stack registry and PreparedMatcher."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.matchers import (
    METHOD_NAMES,
    PreparedMatcher,
    build_matcher,
    method_registry,
)
from repro.distance.damerau import damerau_levenshtein

words = st.lists(
    st.text(alphabet="ABC12", min_size=1, max_size=8), min_size=1, max_size=5
)


class TestRegistry:
    def test_all_fifteen_methods(self):
        assert len(METHOD_NAMES) == 15
        for name in ("DL", "PDL", "Jaro", "Wink", "Ham", "FDL", "FPDL", "FBF",
                     "LDL", "LPDL", "LF", "LFDL", "LFPDL", "LFBF", "SDX"):
            assert name in METHOD_NAMES

    def test_specs_describe_stacks(self):
        reg = method_registry()
        assert reg["LFPDL"].filters == ("length", "fbf")
        assert reg["LFPDL"].verifier == "pdl"
        assert reg["FBF"].verifier is None
        assert reg["DL"].filters == ()
        assert reg["LFDL"].needs_scheme and reg["LFDL"].uses_length
        assert not reg["DL"].needs_scheme

    def test_unknown_method(self):
        with pytest.raises(ValueError, match="unknown method"):
            build_matcher("XYZ")


class TestBuildMatcher:
    @pytest.mark.parametrize("name", METHOD_NAMES)
    def test_every_method_builds_and_runs(self, name):
        m = build_matcher(name, k=1, theta=0.8, scheme="alnum")
        m.prepare(["SMITH1"], ["SMITH2"])
        assert isinstance(m.matches(0, 0), bool)

    def test_fpdl_matches_single_edit(self):
        m = build_matcher("FPDL", k=1, scheme="numeric")
        m.prepare(["123456789"], ["123456780"])
        assert m.matches(0, 0)

    def test_filter_only_counts_pass_as_match(self):
        m = build_matcher("FBF", k=1, scheme="numeric")
        m.prepare(["123456789"], ["987654321"])
        # Same multiset of digits: filter cannot distinguish, so FBF
        # alone declares a (false-positive) match.
        assert m.matches(0, 0)

    def test_verified_pairs_counts_verifier_calls(self):
        m = build_matcher("FDL", k=1, scheme="numeric")
        m.prepare(["111111111", "123456789"], ["999999999", "123456780"])
        for i in range(2):
            for j in range(2):
                m.matches(i, j)
        # Only pairs passing the filter reach DL.
        assert 1 <= m.verified_pairs < 4

    def test_prepare_resets_verified_count(self):
        m = build_matcher("FDL", k=1, scheme="numeric")
        m.prepare(["123"], ["123"])
        m.matches(0, 0)
        m.prepare(["456"], ["456"])
        assert m.verified_pairs == 0

    def test_collect_stats(self):
        m = build_matcher("LFPDL", k=1, scheme="alpha", collect_stats=True)
        m.prepare(["SMITH"], ["SMYTHE"])
        m.matches(0, 0)
        assert m.filter_stats[0].tested == 1

    def test_direct_construction_requires_something(self):
        with pytest.raises(ValueError):
            PreparedMatcher("empty", filters=(), verifier=None)


class TestStackEquivalence:
    """Every DL-wrapped stack must agree with bare DL at threshold k."""

    @given(words, words, st.integers(1, 2))
    def test_filtered_stacks_equal_dl(self, left, right, k):
        reference = build_matcher("DL", k=k)
        reference.prepare(left, right)
        for name in ("PDL", "FDL", "FPDL", "LDL", "LPDL", "LFDL", "LFPDL"):
            m = build_matcher(name, k=k, scheme="alnum")
            m.prepare(left, right)
            for i in range(len(left)):
                for j in range(len(right)):
                    want = damerau_levenshtein(left[i], right[j]) <= k
                    assert m.matches(i, j) == want, (name, left[i], right[j])

    @given(words, words, st.integers(1, 2))
    def test_filter_only_stacks_are_supersets(self, left, right, k):
        for name in ("FBF", "LF", "LFBF"):
            m = build_matcher(name, k=k, scheme="alnum")
            m.prepare(left, right)
            for i in range(len(left)):
                for j in range(len(right)):
                    if damerau_levenshtein(left[i], right[j]) <= k:
                        assert m.matches(i, j), (name, left[i], right[j])
