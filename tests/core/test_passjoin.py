"""PASS-JOIN partition index: layout, completeness, OSA boundary swaps.

The load-bearing property is *completeness for OSA*: for every pair
within edit distance ``k`` (restricted Damerau-Levenshtein — the repo's
``dl``/``pdl`` metric), the probe must emit the pair.  The classic
Levenshtein partition probe is incomplete under transpositions that
straddle a segment boundary, so the exhaustive small-universe sweep
here is the regression net for the boundary-swap variants.
"""

import itertools

import numpy as np
import pytest

from repro.core.passjoin import PassJoinIndex, dedup_sorted, segment_layout
from repro.distance.damerau import damerau_levenshtein


def universe(alphabet, max_len):
    return [
        "".join(t)
        for n in range(max_len + 1)
        for t in itertools.product(alphabet, repeat=n)
    ]


class TestSegmentLayout:
    def test_even_partition_covers_string(self):
        for length in range(0, 25):
            for parts in range(1, 6):
                layout = segment_layout(length, parts)
                assert len(layout) == parts
                pos = 0
                for start, seg_len in layout:
                    assert start == pos
                    pos += seg_len
                assert pos == length

    def test_lengths_differ_by_at_most_one_and_long_last(self):
        layout = segment_layout(10, 3)
        assert layout == [(0, 3), (3, 3), (6, 4)]
        sizes = [seg_len for _, seg_len in segment_layout(11, 4)]
        assert max(sizes) - min(sizes) == 1
        assert sizes == sorted(sizes)  # remainder lands on the tail

    def test_zero_length_segments_when_short(self):
        layout = segment_layout(1, 3)
        assert [seg_len for _, seg_len in layout] == [0, 0, 1]
        assert segment_layout(0, 2) == [(0, 0), (0, 0)]


class TestDedupSorted:
    def test_matches_numpy_unique(self):
        rng = np.random.default_rng(7)
        values = rng.integers(0, 50, size=500)
        np.testing.assert_array_equal(
            dedup_sorted(values), np.unique(values)
        )

    def test_empty(self):
        out = dedup_sorted(np.empty(0, dtype=np.int64))
        assert len(out) == 0


class TestCompleteness:
    """Exhaustive sweep: every OSA <= k pair is emitted."""

    @pytest.mark.parametrize("k", [0, 1, 2])
    def test_dense_universe(self, k):
        strings = universe("ab", 4)
        index = PassJoinIndex(strings, k=k)
        emitted = {
            (int(qi), int(sid))
            for qs, ids in index.candidate_blocks(strings)
            for qi, sid in zip(qs, ids)
        }
        for qi, q in enumerate(strings):
            for sid, s in enumerate(strings):
                if damerau_levenshtein(q, s) <= k:
                    assert (qi, sid) in emitted, (
                        f"missed {q!r} ~ {s!r} at k={k}"
                    )

    def test_boundary_transposition_regression(self):
        # osa("AB", "BA") == 1 but the transposition straddles the
        # "A"|"B" segment boundary — the classic probe misses it.
        index = PassJoinIndex(["AB"], k=1)
        assert 0 in index.candidates("BA")

    @pytest.mark.parametrize("k", [1, 2])
    def test_unicode(self, k):
        strings = ["", "a", "é漢字", "漢é字", "naïve", "naive", "nàive", "AB"]
        index = PassJoinIndex(strings, k=k)
        probes = strings + ["BAX", "éAB", "n\x00ive"]
        for q in probes:
            got = set(index.candidates(q).tolist())
            for sid, s in enumerate(strings):
                if damerau_levenshtein(q, s) <= k:
                    assert sid in got, f"missed {q!r} ~ {s!r} at k={k}"

    def test_empty_strings_reachable(self):
        index = PassJoinIndex(["", "a", "ab"], k=1)
        assert set(index.candidates("").tolist()) >= {0, 1}
        assert 0 in index.candidates("x")

    def test_k0_is_exact_lookup(self):
        strings = ["abc", "abd", "abc", ""]
        index = PassJoinIndex(strings, k=0)
        assert set(index.candidates("abc").tolist()) == {0, 2}
        assert set(index.candidates("").tolist()) == {3}
        assert len(index.candidates("zzz")) == 0


class TestBlocks:
    def test_blocks_are_deduplicated(self):
        strings = universe("ab", 3)
        index = PassJoinIndex(strings, k=2)
        seen = set()
        for qs, ids in index.candidate_blocks(strings):
            for pair in zip(qs.tolist(), ids.tolist()):
                assert pair not in seen, f"duplicate candidate {pair}"
                seen.add(pair)

    def test_max_pairs_caps_blocks(self):
        strings = universe("ab", 3)
        index = PassJoinIndex(strings, k=2)
        blocks = list(index.candidate_blocks(strings, max_pairs=64))
        assert len(blocks) > 1
        assert all(len(qs) <= 64 for qs, _ in blocks)
        capped = {
            (int(qi), int(sid))
            for qs, ids in blocks
            for qi, sid in zip(qs, ids)
        }
        full = {
            (int(qi), int(sid))
            for qs, ids in index.candidate_blocks(strings)
            for qi, sid in zip(qs, ids)
        }
        assert capped == full

    def test_empty_sides(self):
        assert list(PassJoinIndex([], k=1).candidate_blocks(["a"])) == []
        assert list(PassJoinIndex(["a"], k=1).candidate_blocks([])) == []

    def test_rejects_negative_k(self):
        with pytest.raises(ValueError, match="k must be >= 0"):
            PassJoinIndex(["a"], k=-1)
