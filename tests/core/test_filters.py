"""Unit tests for the pair filters and the filter chain."""

import pytest

from repro.core.filters import FBFFilter, FilterChain, FilterStats, LengthFilter
from repro.core.signatures import scheme_for


class TestFBFFilter:
    def test_passes_identical(self):
        f = FBFFilter(1, "numeric")
        f.prepare(["123456789"], ["123456789"])
        assert f.passes(0, 0)

    def test_rejects_distant(self):
        f = FBFFilter(1, "numeric")
        f.prepare(["111111111"], ["999999999"])
        assert not f.passes(0, 0)

    def test_bound_is_2k(self):
        # "12346" vs "12345" differ by one substitution: diff bits = 2.
        f1 = FBFFilter(1, "numeric")
        f1.prepare(["12346"], ["12345"])
        assert f1.passes(0, 0)
        f0 = FBFFilter(0, "numeric")
        f0.prepare(["12346"], ["12345"])
        assert not f0.passes(0, 0)

    def test_scheme_autodetect(self):
        f = FBFFilter(1)
        f.prepare(["123"], ["456"])
        assert f.scheme.name == "numeric"
        f2 = FBFFilter(1)
        f2.prepare(["ABC"], ["DEF"])
        assert f2.scheme.name.startswith("alpha")

    def test_scheme_by_string(self):
        f = FBFFilter(1, "alnum")
        f.prepare(["1A"], ["1B"])
        assert f.scheme.width == 3

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            FBFFilter(-1, "numeric")

    def test_extended_scheme_uses_slack(self):
        scheme = scheme_for("alpha", 1, extended=True)
        f = FBFFilter(0, scheme)
        # "AAB" vs "ABA": same multiset, but only AAB has a doubled
        # letter -> 1 differing indicator bit, within slack for k=0.
        f.prepare(["AAB"], ["ABA"])
        assert f.passes(0, 0)


class TestLengthFilter:
    def test_paper_examples(self):
        # "Joe"/"Jose" and "Jose"/"Josef" pass k=1; "Joe"/"Josef" fails.
        f = LengthFilter(1)
        f.prepare(["Joe", "Jose"], ["Jose", "Josef"])
        assert f.passes(0, 0)  # Joe vs Jose
        assert f.passes(1, 1)  # Jose vs Josef
        assert not f.passes(0, 1)  # Joe vs Josef

    def test_useless_on_fixed_length(self):
        # Every pair of equal-length strings passes: the paper's reason
        # not to evaluate it on SSN/phone/birthdate.
        f = LengthFilter(1)
        ssns = ["111111111", "999999999", "123456789"]
        f.prepare(ssns, ssns)
        assert all(f.passes(i, j) for i in range(3) for j in range(3))

    def test_k_zero(self):
        f = LengthFilter(0)
        f.prepare(["AB"], ["AB", "ABC"])
        assert f.passes(0, 0)
        assert not f.passes(0, 1)


class TestFilterChain:
    def test_short_circuit_order(self):
        chain = FilterChain([LengthFilter(1), FBFFilter(1, "alpha")])
        chain.prepare(["AB"], ["ABCDEF"])
        assert not chain.passes(0, 0)

    def test_empty_chain_passes_everything(self):
        chain = FilterChain([])
        chain.prepare(["A"], ["Z"])
        assert chain.passes(0, 0)

    def test_stats_collection(self):
        chain = FilterChain(
            [LengthFilter(1), FBFFilter(1, scheme_for("alpha", 2))],
            collect_stats=True,
        )
        left = ["SMITH", "JONES"]
        right = ["SMYTH", "JONE"]
        chain.prepare(left, right)
        for i in range(2):
            for j in range(2):
                chain.passes(i, j)
        length_stats, fbf_stats = chain.stats
        assert isinstance(length_stats, FilterStats)
        assert length_stats.tested == 4
        # Only pairs that passed length filtering reach FBF.
        assert fbf_stats.tested == length_stats.passed
        assert 0.0 <= length_stats.pass_rate <= 1.0
        assert length_stats.rejected == length_stats.tested - length_stats.passed

    def test_stats_off_by_default(self):
        chain = FilterChain([LengthFilter(1)])
        chain.prepare(["A"], ["A"])
        chain.passes(0, 0)
        assert chain.stats[0].tested == 0

    def test_prepare_resets_stats(self):
        chain = FilterChain([LengthFilter(1)], collect_stats=True)
        chain.prepare(["A"], ["A"])
        chain.passes(0, 0)
        chain.prepare(["B"], ["B"])
        assert chain.stats[0].tested == 0
