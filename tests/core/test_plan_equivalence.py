"""Property test: every safe plan equals the reference all-pairs scalar.

The planner's core guarantee — candidate generation and backend choice
are *execution strategy*, never *semantics* — restated over random
inputs: for every method stack and every safe (generator, backend)
composition, the match set is identical to Algorithm 7's all-pairs
scalar loop, and the funnel conserves.

Inputs deliberately include empty strings, duplicates and mixed
lengths; the alphabet mixes digits and letters so the auto-detected
signature scheme exercises the alphanumeric combination path.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import native
from repro.core.matchers import METHOD_NAMES, method_registry
from repro.core.plan import (
    FBFIndexGenerator,
    JoinPlanner,
    LengthBucketGenerator,
    PassJoinGenerator,
    PrefixQgramGenerator,
)
from repro.data.datasets import dataset_for_family
from repro.obs import StatsCollector

REGISTRY = method_registry()

#: the native tier joins the sweep wherever a compiled provider loaded;
#: elsewhere it is exercised only as a (warning) fallback
_BACKENDS = ("scalar", "vectorized") + (
    ("native",) if native.available() else ()
)

strings = st.lists(
    st.text(alphabet="ab12", max_size=6), min_size=0, max_size=12
)


def _safe_generators(method: str) -> list[str]:
    spec = REGISTRY[method]
    names = ["all-pairs"]
    if LengthBucketGenerator().is_safe_for(spec):
        names.append("length-bucket")
    if FBFIndexGenerator().is_safe_for(spec):
        names.append("fbf-index")
    if PassJoinGenerator().is_safe_for(spec):
        names.append("pass-join")
    if PrefixQgramGenerator().is_safe_for(spec):
        names.append("prefix")
    return names


@pytest.mark.parametrize("method", METHOD_NAMES)
@settings(max_examples=25)
@given(left=strings, right=strings)
def test_safe_plans_match_reference(method, left, right):
    ref = JoinPlanner(left, right, k=1, record_matches=True).run(
        method, generator="all-pairs", backend="scalar"
    )
    expected = sorted(ref.matches)
    for generator in _safe_generators(method):
        for backend in _BACKENDS:
            c = StatsCollector(f"{generator}/{backend}")
            planner = JoinPlanner(left, right, k=1, record_matches=True)
            r = planner.run(
                method, generator=generator, backend=backend, collector=c
            )
            assert sorted(r.matches) == expected, (
                f"{method} under {generator}/{backend} diverged"
            )
            assert r.match_count == ref.match_count
            assert r.diagonal_matches == ref.diagonal_matches
            assert c.pairs_considered == len(left) * len(right)
            assert c.conserved, f"{method} {generator}/{backend} leaked pairs"
            assert c.matched == ref.match_count


dup_strings = st.lists(
    st.sampled_from(["", "a1", "a2", "ab", "ba1", "b2", "abab"]),
    min_size=0,
    max_size=12,
)


@pytest.mark.parametrize("method", ["DL", "FPDL", "Wink", "LFBF", "SDX"])
@settings(max_examples=10)
@given(left=dup_strings, right=dup_strings)
def test_collapsed_plans_match_reference(method, left, right):
    """collapse='on' is pure execution strategy: identical matches and
    identical weighted funnel accounting, in original-pair units."""
    ref = JoinPlanner(
        left, right, k=1, record_matches=True,
        collapse="off", self_join=False, memo="off",
    ).run(method, generator="all-pairs", backend="scalar")
    for backend in _BACKENDS:
        c = StatsCollector(f"collapse/{backend}")
        r = JoinPlanner(
            left, right, k=1, record_matches=True, collapse="on",
        ).run(method, backend=backend, collector=c)
        assert sorted(r.matches) == sorted(ref.matches)
        assert r.match_count == ref.match_count
        assert r.diagonal_matches == ref.diagonal_matches
        assert c.pairs_considered == len(left) * len(right)
        assert c.conserved, f"{method} collapsed/{backend} leaked pairs"
        assert c.matched == ref.match_count


@pytest.mark.parametrize("method", ["DL", "FPDL", "Wink", "LFBF", "SDX"])
@settings(max_examples=10)
@given(data=dup_strings)
def test_self_join_plans_match_reference(method, data):
    """Triangular self-join enumeration equals the full n x n product."""
    ref = JoinPlanner(
        data, list(data), k=1, record_matches=True,
        collapse="off", self_join=False, memo="off",
    ).run(method, generator="all-pairs", backend="scalar")
    for collapse in ("on", "off"):
        c = StatsCollector(f"self-join/{collapse}")
        r = JoinPlanner(
            data, data, k=1, record_matches=True,
            collapse=collapse, self_join=True,
        ).run(method, backend="scalar", collector=c)
        assert sorted(r.matches) == sorted(ref.matches)
        assert r.match_count == ref.match_count
        assert r.diagonal_matches == ref.diagonal_matches
        assert c.pairs_considered == len(data) ** 2
        assert c.conserved, f"{method} self-join/{collapse} leaked pairs"
        assert c.matched == ref.match_count


@pytest.mark.parametrize("generator", ["pass-join", "prefix"])
@settings(max_examples=10)
@given(left=dup_strings, right=dup_strings)
def test_partition_generators_compose_with_collapse(generator, left, right):
    """The partition indexes ride the unique-space planner under
    collapse exactly like the other generators — identical matches and
    conserved original-pair accounting."""
    ref = JoinPlanner(
        left, right, k=1, record_matches=True,
        collapse="off", self_join=False, memo="off",
    ).run("FPDL", generator="all-pairs", backend="scalar")
    for collapse in ("on", "off"):
        c = StatsCollector(f"{generator}/collapse={collapse}")
        r = JoinPlanner(
            left, right, k=1, record_matches=True, collapse=collapse,
        ).run("FPDL", generator=generator, backend="vectorized", collector=c)
        assert sorted(r.matches) == sorted(ref.matches)
        assert r.match_count == ref.match_count
        assert r.diagonal_matches == ref.diagonal_matches
        assert c.pairs_considered == len(left) * len(right)
        assert c.conserved, f"{generator}/collapse={collapse} leaked pairs"


@pytest.mark.parametrize("generator", ["pass-join", "prefix"])
@settings(max_examples=10)
@given(data=dup_strings)
def test_partition_generators_compose_with_self_join(generator, data):
    """Triangle enumeration over partition-index candidates equals the
    full product."""
    ref = JoinPlanner(
        data, list(data), k=1, record_matches=True,
        collapse="off", self_join=False, memo="off",
    ).run("FPDL", generator="all-pairs", backend="scalar")
    for collapse in ("on", "off"):
        c = StatsCollector(f"{generator}/self-join/{collapse}")
        r = JoinPlanner(
            data, data, k=1, record_matches=True,
            collapse=collapse, self_join=True,
        ).run("FPDL", generator=generator, backend="vectorized", collector=c)
        assert sorted(r.matches) == sorted(ref.matches)
        assert r.match_count == ref.match_count
        assert r.diagonal_matches == ref.diagonal_matches
        assert c.pairs_considered == len(data) ** 2
        assert c.conserved


class TestMultiprocessEquivalence:
    """Fixed-input equivalence for the pool backend (too slow for the
    hypothesis loop: each example would fork a pool)."""

    @pytest.fixture(scope="class")
    def ssn_pair(self):
        return dataset_for_family("SSN", 40, seed=9)

    @pytest.mark.parametrize("method", ["DL", "FPDL", "LFPDL", "Wink", "SDX"])
    def test_matches_reference(self, ssn_pair, method):
        ref = JoinPlanner(
            ssn_pair.clean, ssn_pair.error, k=1, record_matches=True
        ).run(method, generator="all-pairs", backend="scalar")
        par = JoinPlanner(
            ssn_pair.clean, ssn_pair.error, k=1,
            workers=2, record_matches=True,
        ).run(method, generator="all-pairs", backend="multiprocess")
        assert sorted(par.matches) == sorted(ref.matches)
        assert par.verified_pairs == ref.verified_pairs

    def test_candidate_fed_pool_matches_reference(self, ssn_pair):
        ref = JoinPlanner(
            ssn_pair.clean, ssn_pair.error, k=1, record_matches=True
        ).run("FPDL", generator="all-pairs", backend="scalar")
        par = JoinPlanner(
            ssn_pair.clean, ssn_pair.error, k=1,
            workers=2, record_matches=True,
        ).run("FPDL", generator="fbf-index", backend="multiprocess")
        assert sorted(par.matches) == sorted(ref.matches)

    def test_collapsed_pool_matches_reference(self):
        # Heavy duplication so collapse engages; the pool backend must
        # ship weights to workers and come back bit-identical.
        names = ["SMITH", "SMYTH", "JONES", "JONAS", "LEE"]
        left = [names[i % len(names)] for i in range(30)]
        right = [names[(i * 2) % len(names)] for i in range(24)]
        ref = JoinPlanner(
            left, right, k=1, record_matches=True,
            collapse="off", memo="off",
        ).run("FPDL", generator="all-pairs", backend="scalar")
        par = JoinPlanner(
            left, right, k=1, workers=2, record_matches=True, collapse="on",
        ).run("FPDL", backend="multiprocess")
        assert sorted(par.matches) == sorted(ref.matches)
        assert par.match_count == ref.match_count
        assert par.diagonal_matches == ref.diagonal_matches

    def test_collapsed_self_join_pool_matches_reference(self):
        names = ["SMITH", "SMYTH", "JONES"]
        data = [names[i % len(names)] for i in range(24)]
        ref = JoinPlanner(
            data, list(data), k=1, record_matches=True,
            collapse="off", self_join=False, memo="off",
        ).run("FPDL", generator="all-pairs", backend="scalar")
        par = JoinPlanner(
            data, data, k=1, workers=2, record_matches=True,
        ).run("FPDL", backend="multiprocess")
        assert sorted(par.matches) == sorted(ref.matches)
        assert par.match_count == ref.match_count
        assert par.diagonal_matches == ref.diagonal_matches
