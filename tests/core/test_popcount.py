"""Unit and property tests for the popcount kernels."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.popcount import (
    POPCOUNT_KERNELS,
    popcount,
    popcount_batch_table_u32,
    popcount_batch_table_u64,
    popcount_batch_u32,
    popcount_batch_u64,
    popcount_kernighan,
    popcount_parallel,
    popcount_table8,
    popcount_table16,
)

u32 = st.integers(0, 2**32 - 1)
bigint = st.integers(0, 2**128 - 1)


class TestScalarKernels:
    @pytest.mark.parametrize("name,fn", sorted(POPCOUNT_KERNELS.items()))
    def test_zero(self, name, fn):
        assert fn(0) == 0

    @pytest.mark.parametrize("name,fn", sorted(POPCOUNT_KERNELS.items()))
    def test_single_bits(self, name, fn):
        for shift in range(64):
            assert fn(1 << shift) == 1, f"{name} failed at bit {shift}"

    @pytest.mark.parametrize("name,fn", sorted(POPCOUNT_KERNELS.items()))
    def test_all_ones_u32(self, name, fn):
        assert fn(0xFFFFFFFF) == 32

    @pytest.mark.parametrize("name,fn", sorted(POPCOUNT_KERNELS.items()))
    def test_alternating(self, name, fn):
        assert fn(0x55555555) == 16
        assert fn(0xAAAAAAAA) == 16

    @pytest.mark.parametrize("name,fn", sorted(POPCOUNT_KERNELS.items()))
    def test_negative_rejected(self, name, fn):
        with pytest.raises(ValueError):
            fn(-1)

    @given(u32)
    def test_kernels_agree_u32(self, x):
        reference = bin(x).count("1")
        assert popcount(x) == reference
        assert popcount_kernighan(x) == reference
        assert popcount_table8(x) == reference
        assert popcount_table16(x) == reference
        assert popcount_parallel(x) == reference

    @given(bigint)
    def test_kernels_agree_arbitrary_width(self, x):
        reference = bin(x).count("1")
        for fn in POPCOUNT_KERNELS.values():
            assert fn(x) == reference

    def test_wegner_iteration_count_semantics(self):
        # Wegner's loop runs once per set bit; sparse words are cheap —
        # the paper's core performance argument.  Verify the clearing
        # identity it relies on.
        x = 0b101100
        assert x & (x - 1) == 0b101000  # lowest set bit cleared


class TestBatchKernels:
    @given(st.lists(u32, min_size=1, max_size=50))
    def test_u32_matches_scalar(self, values):
        arr = np.array(values, dtype=np.uint32)
        got = popcount_batch_u32(arr)
        assert got.tolist() == [bin(v).count("1") for v in values]

    @given(st.lists(st.integers(0, 2**64 - 1), min_size=1, max_size=30))
    def test_u64_matches_scalar(self, values):
        arr = np.array(values, dtype=np.uint64)
        got = popcount_batch_u64(arr)
        assert got.tolist() == [bin(v).count("1") for v in values]

    def test_2d_shape_preserved(self):
        arr = np.arange(12, dtype=np.uint32).reshape(3, 4)
        got = popcount_batch_u32(arr)
        assert got.shape == (3, 4)
        assert got[2, 3] == bin(11).count("1")

    def test_empty(self):
        assert popcount_batch_u32(np.empty(0, dtype=np.uint32)).shape == (0,)

    def test_noncontiguous_input(self):
        arr = np.arange(20, dtype=np.uint32)[::2]
        got = popcount_batch_u32(arr)
        assert got.tolist() == [bin(v).count("1") for v in range(0, 20, 2)]

    def test_output_dtype_bounded(self):
        got = popcount_batch_u32(np.array([0xFFFFFFFF], dtype=np.uint32))
        assert got[0] == 32


class TestBothBatchPaths:
    """Pin the ufunc path and the byte-table path against each other.

    ``popcount_batch_*`` dispatches on NumPy version, so on any one
    installation only one branch runs implicitly; calling the table
    path explicitly keeps both pinned everywhere.
    """

    @given(st.lists(u32, min_size=1, max_size=50))
    def test_u32_paths_agree(self, values):
        arr = np.array(values, dtype=np.uint32)
        table = popcount_batch_table_u32(arr)
        assert table.tolist() == popcount_batch_u32(arr).tolist()
        assert table.tolist() == [bin(v).count("1") for v in values]

    @given(st.lists(st.integers(0, 2**64 - 1), min_size=1, max_size=30))
    def test_u64_paths_agree(self, values):
        arr = np.array(values, dtype=np.uint64)
        table = popcount_batch_table_u64(arr)
        assert table.tolist() == popcount_batch_u64(arr).tolist()
        assert table.tolist() == [bin(v).count("1") for v in values]

    def test_table_path_boundary_words(self):
        full32 = np.array([0, 1, 0x80000000, 0xFFFFFFFF], dtype=np.uint32)
        assert popcount_batch_table_u32(full32).tolist() == [0, 1, 1, 32]
        full64 = np.array(
            [0, 1, 1 << 63, 0xFFFFFFFFFFFFFFFF], dtype=np.uint64
        )
        assert popcount_batch_table_u64(full64).tolist() == [0, 1, 1, 64]
