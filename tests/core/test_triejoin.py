"""Unit and property tests for the trie-based similarity index."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.index import FBFIndex
from repro.core.triejoin import TrieIndex
from repro.distance.damerau import damerau_levenshtein

pool = st.lists(
    st.text(alphabet="ABC12", min_size=1, max_size=9), min_size=1, max_size=20
)


class TestConstruction:
    def test_empty(self):
        idx = TrieIndex()
        assert len(idx) == 0
        assert idx.search("ABC", 2) == []

    def test_add_returns_ids(self):
        idx = TrieIndex()
        assert idx.add("AB") == 0
        assert idx.add("AC") == 1
        assert idx[1] == "AC"

    def test_prefix_sharing(self):
        idx = TrieIndex(["ABCDE", "ABCDF", "ABCXY"])
        # 3 strings x 5 chars, but shared prefixes: root + ABC (3) +
        # DE/DF (3 nodes: D,E,F) + XY (2) = far fewer than 16.
        assert idx.node_count() < 1 + 15

    def test_duplicates_share_terminal(self):
        idx = TrieIndex(["AA", "AA"])
        assert idx.search("AA", 0) == [0, 1]


class TestSearch:
    def test_exact(self):
        idx = TrieIndex(["SMITH", "SMYTH"])
        assert idx.search("SMITH", 0) == [0]

    def test_single_edit(self):
        idx = TrieIndex(["SMITH", "SMYTH", "JONES"])
        assert idx.search("SMITH", 1) == [0, 1]

    def test_transposition_is_one_edit(self):
        idx = TrieIndex(["SMITH"])
        assert idx.search("SMIHT", 1) == [0]

    def test_osa_restriction_respected(self):
        idx = TrieIndex(["ABC"])
        # OSA("CA", "ABC") = 3, not 2.
        assert idx.search("CA", 2) == []
        assert idx.search("CA", 3) == [0]

    def test_empty_semantics(self):
        idx = TrieIndex(["", "A"])
        assert idx.search("A", 1) == [1]
        assert idx.search("", 2) == []

    def test_negative_k(self):
        with pytest.raises(ValueError):
            TrieIndex(["A"]).search("A", -1)

    def test_search_strings(self):
        idx = TrieIndex(["AB", "AC"])
        assert idx.search_strings("AB", 1) == ["AB", "AC"]

    @settings(max_examples=40)
    @given(pool, st.integers(0, 3), st.integers(0, 10**9))
    def test_exact_vs_brute_force(self, strings, k, seed):
        rng = random.Random(seed)
        query = rng.choice(strings)
        idx = TrieIndex(strings)
        got = idx.search(query, k)
        want = sorted(
            i
            for i, s in enumerate(strings)
            if damerau_levenshtein(query, s) <= k
        )
        assert got == want

    @settings(max_examples=25)
    @given(pool, st.integers(0, 2), st.integers(0, 10**9))
    def test_agrees_with_fbf_index(self, strings, k, seed):
        rng = random.Random(seed)
        query = rng.choice(strings)
        trie = TrieIndex(strings)
        fbf = FBFIndex(strings, scheme="alnum")
        assert trie.search(query, k) == fbf.search(query, k)


class TestSearchCollector:
    def test_funnel_conserves(self):
        from repro.obs import StatsCollector

        pool = ["AB", "ABC", "BBC", "C12"]
        idx = TrieIndex(pool)
        c = StatsCollector("probe")
        hits = idx.search("ABC", 1, collector=c)
        assert c.pairs_considered == len(pool)
        assert c.conserved
        assert c.matched == len(hits)
        # Filter and verify are fused in the trie DFS, so survivors are
        # exactly the matches and nothing is separately "verified".
        assert c.survivors == len(hits)
        assert c.verified == 0
        prune = c.stages["prefix-prune"]
        assert (prune.tested, prune.passed) == (len(pool), len(hits))
        assert c.meta["nodes_visited"] >= 1

    def test_collector_does_not_change_results(self):
        from repro.obs import StatsCollector

        pool = ["AB", "ABC", "BBC"]
        idx = TrieIndex(pool)
        assert idx.search("AB", 1, collector=StatsCollector()) == idx.search(
            "AB", 1
        )

    def test_empty_index_accounts_zero(self):
        from repro.obs import StatsCollector

        c = StatsCollector("probe")
        assert TrieIndex().search("X", 1, collector=c) == []
        assert c.pairs_considered == 0
        assert c.conserved
