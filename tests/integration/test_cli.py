"""Tests for the repro-fbf command-line interface."""

import contextlib

import pytest

from repro.cli import build_parser, main


@pytest.fixture
def string_files(tmp_path):
    left = tmp_path / "left.txt"
    right = tmp_path / "right.txt"
    left.write_text("123456789\n555443333\n999887777\n")
    right.write_text("123456780\n555443333\n111222333\n")
    return left, right


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_match_defaults(self, string_files):
        left, right = string_files
        args = build_parser().parse_args(["match", str(left), str(right)])
        assert args.method == "FPDL" and args.k == 1

    def test_rejects_unknown_method(self, string_files):
        left, right = string_files
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["match", str(left), str(right), "--method", "BOGUS"]
            )


class TestMatchCommand:
    def test_output_pairs(self, string_files, capsys):
        left, right = string_files
        assert main(["match", str(left), str(right), "--k", "1"]) == 0
        captured = capsys.readouterr()
        assert "123456789\t123456780" in captured.out
        assert "555443333\t555443333" in captured.out
        assert "2 matches" in captured.err

    def test_quiet_suppresses_pairs(self, string_files, capsys):
        left, right = string_files
        main(["match", str(left), str(right), "--quiet"])
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "matches" in captured.err

    def test_method_selection(self, string_files, capsys):
        left, right = string_files
        main(["match", str(left), str(right), "--method", "DL"])
        assert "DL" in capsys.readouterr().err

    def test_missing_file(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot read"):
            main(["match", str(tmp_path / "nope.txt"), str(tmp_path / "nope.txt")])

    def test_empty_file(self, tmp_path):
        empty = tmp_path / "empty.txt"
        empty.write_text("\n\n")
        with pytest.raises(SystemExit, match="no strings"):
            main(["match", str(empty), str(empty)])


class TestDedupeCommand:
    def test_clusters(self, tmp_path, capsys):
        roster = tmp_path / "roster.txt"
        roster.write_text("SMITH\nSMYTH\nJONES\nGARCIA\n")
        assert main(["dedupe", str(roster), "--k", "1"]) == 0
        captured = capsys.readouterr()
        assert "SMITH | SMYTH" in captured.out
        assert "1 duplicate clusters" in captured.err

    def test_no_duplicates(self, tmp_path, capsys):
        roster = tmp_path / "roster.txt"
        roster.write_text("AAAA\nZZZZZZ\n")
        main(["dedupe", str(roster)])
        captured = capsys.readouterr()
        assert "0 duplicate clusters" in captured.err


class TestJoinStreamCommand:
    @pytest.fixture
    def stream_files(self, tmp_path):
        big = tmp_path / "big.txt"
        big.write_text("SMITH\nSMYTH\nJONES\nGARCIA\nMILLER\nSMITH\n" * 20)
        roster = tmp_path / "roster.txt"
        roster.write_text("SMITH\nJONES\nWILSON\n")
        return big, roster

    def test_in_memory_run_prints_matches(self, stream_files, capsys):
        big, roster = stream_files
        assert main(
            ["join-stream", str(big), str(roster), "--k", "1",
             "--chunk-rows", "40"]
        ) == 0
        captured = capsys.readouterr()
        assert "SMITH" in captured.out
        assert "chunks" in captured.err
        assert "complete" in captured.err

    def test_spill_checkpoint_pause_resume(
        self, stream_files, tmp_path, capsys
    ):
        big, roster = stream_files
        spill = tmp_path / "m.jsonl"
        ck = tmp_path / "ck.json"
        assert main(
            ["join-stream", str(big), str(roster), "--k", "1",
             "--chunk-rows", "40", "--spill", str(spill),
             "--checkpoint", str(ck), "--max-chunks", "1", "--quiet"]
        ) == 0
        assert "paused" in capsys.readouterr().err
        assert ck.exists()
        assert main(
            ["join-stream", str(big), str(roster), "--k", "1",
             "--chunk-rows", "40", "--spill", str(spill),
             "--checkpoint", str(ck), "--resume", "--quiet"]
        ) == 0
        err = capsys.readouterr().err
        assert "resumed after chunk 0" in err
        assert "complete" in err
        assert not ck.exists()
        assert spill.stat().st_size > 0

    def test_memory_budget_flag(self, stream_files, capsys):
        big, roster = stream_files
        assert main(
            ["join-stream", str(big), str(roster), "--memory-budget", "8",
             "--quiet"]
        ) == 0
        assert "1 chunks" in capsys.readouterr().err

    def test_stats_funnel_conserved_output(self, stream_files, capsys):
        big, roster = stream_files
        assert main(
            ["join-stream", str(big), str(roster), "--k", "1",
             "--chunk-rows", "40", "--stats", "--quiet"]
        ) == 0
        err = capsys.readouterr().err
        assert "conserved: yes" in err

    def test_checkpoint_without_spill_fails(self, stream_files, tmp_path):
        big, roster = stream_files
        with pytest.raises(SystemExit, match="spill"):
            main(
                ["join-stream", str(big), str(roster),
                 "--checkpoint", str(tmp_path / "ck.json")]
            )

    def test_gzip_inputs(self, tmp_path, capsys):
        import gzip

        big = tmp_path / "big.txt.gz"
        with gzip.open(big, "wt") as fh:
            fh.write("SMITH\nJONES\n" * 10)
        roster = tmp_path / "roster.txt.gz"
        with gzip.open(roster, "wt") as fh:
            fh.write("SMITH\n")
        assert main(
            ["join-stream", str(big), str(roster), "--quiet"]
        ) == 0
        assert "matches" in capsys.readouterr().err


class TestMatchGzipInput:
    def test_match_reads_gzip_files(self, tmp_path, capsys):
        import gzip

        left = tmp_path / "left.txt.gz"
        with gzip.open(left, "wt") as fh:
            fh.write("123456789\n555443333\n")
        right = tmp_path / "right.txt"
        right.write_text("123456780\n555443333\n")
        assert main(["match", str(left), str(right), "--k", "1"]) == 0
        assert "2 matches" in capsys.readouterr().err


class TestReportCommand:
    def test_writes_report(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        (results / "table01_ssn_k1.txt").write_text("table body")
        out = tmp_path / "REPORT.md"
        assert main(
            ["report", "--results", str(results), "--output", str(out)]
        ) == 0
        assert "table body" in out.read_text()

    def test_prints_without_output(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        main(["report", "--results", str(results)])
        assert "Reproduction report" in capsys.readouterr().out


class TestExperimentCommand:
    def test_prints_table(self, capsys):
        assert main(["experiment", "--family", "SSN", "--n", "60"]) == 0
        out = capsys.readouterr().out
        assert "SSN experiment" in out
        assert "FPDL" in out and "Gen" in out

    def test_length_filter_set(self, capsys):
        main(["experiment", "--family", "LN", "--n", "60", "--length-filter"])
        out = capsys.readouterr().out
        assert "LFPDL" in out


class TestStatsFlags:
    def test_match_stats_prints_funnel(self, string_files, capsys):
        left, right = string_files
        assert main(["match", str(left), str(right), "--stats"]) == 0
        err = capsys.readouterr().err
        assert "funnel: FPDL" in err
        assert "conserved: yes" in err
        assert "fbf" in err

    def test_match_stats_json(self, string_files, tmp_path, capsys):
        import json

        left, right = string_files
        out = tmp_path / "stats.json"
        assert main(
            ["match", str(left), str(right), "--stats-json", str(out)]
        ) == 0
        d = json.loads(out.read_text())
        assert d["conserved"] is True
        assert d["pairs_considered"] == 9
        assert d["meta"]["method"] == "FPDL"
        # No funnel on stderr unless --stats was also given.
        assert "funnel:" not in capsys.readouterr().err

    def test_no_stats_flag_no_funnel(self, string_files, capsys):
        left, right = string_files
        main(["match", str(left), str(right)])
        assert "funnel:" not in capsys.readouterr().err

    def test_dedupe_stats(self, tmp_path, capsys):
        roster = tmp_path / "roster.txt"
        roster.write_text("SMITH\nSMYTH\nJONES\n")
        assert main(["dedupe", str(roster), "--stats"]) == 0
        assert "conserved: yes" in capsys.readouterr().err

    def test_experiment_stats_json_has_per_method_children(
        self, tmp_path, capsys
    ):
        import json

        out = tmp_path / "exp.json"
        assert main(
            [
                "experiment", "--family", "SSN", "--n", "40",
                "--stats-json", str(out),
            ]
        ) == 0
        d = json.loads(out.read_text())
        children = d["children"]
        assert set(children) >= {"DL", "FPDL", "FBF"}
        assert all(c["conserved"] for c in children.values())
        assert children["FPDL"]["stages"][0]["name"] == "fbf"


class TestLoggingFlags:
    def test_verbose_emits_info_logs(self, string_files, capsys):
        left, right = string_files
        main(["-v", "match", str(left), str(right), "--quiet"])
        assert "INFO repro.cli" in capsys.readouterr().err

    def test_default_hides_info_logs(self, string_files, capsys):
        left, right = string_files
        main(["match", str(left), str(right), "--quiet"])
        assert "INFO repro" not in capsys.readouterr().err


@pytest.fixture
def roster_file(tmp_path):
    roster = tmp_path / "roster.txt"
    roster.write_text("SMITH\nSMYTH\nJONES\nJONSE\nBROWN\n")
    return roster


class TestQueryCommand:
    def test_tsv_output(self, roster_file, capsys):
        assert main(["query", "--data", str(roster_file), "SMITH"]) == 0
        captured = capsys.readouterr()
        assert "SMITH\t0\tSMITH" in captured.out
        assert "SMITH\t1\tSMYTH" in captured.out
        assert "2 matches for 1 queries" in captured.err

    def test_json_output(self, roster_file, capsys):
        import json

        main(["query", "--data", str(roster_file), "--json", "SMITH", "NOPE"])
        lines = capsys.readouterr().out.splitlines()
        payloads = [json.loads(line) for line in lines]
        assert payloads[0]["ids"] == [0, 1]
        assert payloads[1]["ids"] == []

    def test_method_and_k_flags(self, roster_file, capsys):
        main(
            ["query", "--data", str(roster_file), "--k", "0",
             "--method", "myers", "SMITH"]
        )
        out = capsys.readouterr().out
        assert out.splitlines() == ["SMITH\t0\tSMITH"]

    def test_requires_a_source(self, roster_file):
        with pytest.raises(SystemExit):
            main(["query", "SMITH"])
        with pytest.raises(SystemExit):
            main(
                ["query", "--data", str(roster_file),
                 "--snapshot", "x.npz", "SMITH"]
            )

    def test_stats_funnel_conserved(self, roster_file, capsys):
        assert main(
            ["query", "--data", str(roster_file), "--stats", "SMITH", "JONES"]
        ) == 0
        err = capsys.readouterr().err
        assert "conserved: yes" in err
        assert "fbf-index" in err


class TestServeCommand:
    def run_serve(self, monkeypatch, capsys, argv, requests):
        import io
        import json

        lines = [json.dumps(r) for r in requests]
        monkeypatch.setattr(
            "sys.stdin", io.StringIO("\n".join(lines) + "\n")
        )
        assert main(argv) == 0
        captured = capsys.readouterr()
        responses = [
            json.loads(line) for line in captured.out.splitlines()
        ]
        return responses, captured.err

    def test_round_trip(self, roster_file, monkeypatch, capsys):
        responses, err = self.run_serve(
            monkeypatch,
            capsys,
            ["serve", "--data", str(roster_file)],
            [
                {"op": "query", "value": "SMITH"},
                {"op": "add", "value": "SMITT"},
                {"op": "query", "value": "SMITH"},
                {"op": "stats"},
            ],
        )
        assert responses[0]["ids"] == [0, 1]
        assert responses[2]["ids"] == [0, 1, 5]
        assert responses[3]["stats"]["size"] == 6
        assert "served 4 requests" in err

    def test_snapshot_then_warm_start(
        self, roster_file, tmp_path, monkeypatch, capsys
    ):
        snap = tmp_path / "warm.npz"
        self.run_serve(
            monkeypatch,
            capsys,
            ["serve", "--data", str(roster_file)],
            [
                {"op": "add", "value": "SMITT"},
                {"op": "snapshot", "path": str(snap)},
            ],
        )
        responses, _ = self.run_serve(
            monkeypatch,
            capsys,
            ["serve", "--snapshot", str(snap)],
            [{"op": "query", "value": "SMITH"}],
        )
        assert responses[0]["ids"] == [0, 1, 5]

    def test_serve_stats_json_conserved(
        self, roster_file, tmp_path, monkeypatch, capsys
    ):
        import json

        out = tmp_path / "serve.json"
        self.run_serve(
            monkeypatch,
            capsys,
            ["serve", "--data", str(roster_file), "--stats-json", str(out)],
            [
                {"op": "query_batch", "values": ["SMITH", "JONES"]},
                {"op": "query", "value": "SMITH"},
            ],
        )
        d = json.loads(out.read_text())
        assert d["conserved"] is True
        assert d["counters"]["cache_hits"] == 1


class TestMetricsFlags:
    def test_match_metrics_json_bridges_funnel(
        self, string_files, tmp_path, capsys
    ):
        import json

        left, right = string_files
        out = tmp_path / "m.json"
        assert main(
            ["match", str(left), str(right), "--metrics-json", str(out)]
        ) == 0
        snap = json.loads(out.read_text())
        series = snap["metrics"]
        assert series["repro_join_pairs_considered_total"]["value"] > 0
        stage_keys = [k for k in series if "stage_pairs_total" in k]
        assert stage_keys  # labelled per-stage counters present

    def test_query_metrics_json_uses_service_registry(
        self, roster_file, tmp_path, capsys
    ):
        import json

        out = tmp_path / "m.json"
        assert main(
            ["query", "--data", str(roster_file), "SMITH",
             "--metrics-json", str(out)]
        ) == 0
        series = json.loads(out.read_text())["metrics"]
        assert series["serve_queries_total"]["value"] == 1
        assert series["index_size"]["value"] == 5

    def test_serve_metrics_json(
        self, roster_file, tmp_path, monkeypatch, capsys
    ):
        import io
        import json

        out = tmp_path / "m.json"
        monkeypatch.setattr(
            "sys.stdin",
            io.StringIO('{"op": "query", "value": "SMITH"}\n'),
        )
        assert main(
            ["serve", "--data", str(roster_file),
             "--metrics-json", str(out)]
        ) == 0
        capsys.readouterr()
        series = json.loads(out.read_text())["metrics"]
        assert series["serve_queries_total"]["value"] == 1


class TestServeMetricsPort:
    @contextlib.contextmanager
    def _serve_with_listener(self, roster_file, requests):
        """Run `serve --metrics-port 0` as a subprocess, feed it
        requests (synchronising on each response line), and yield the
        listener's bound port while the server is still up."""
        import json
        import subprocess
        import sys

        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--data", str(roster_file), "--metrics-port", "0",
            ],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            port = None
            for line in proc.stderr:
                if "metrics listening" in line:
                    port = int(line.rsplit(":", 1)[1].split("/")[0])
                    break
            assert port is not None, "no announce line on stderr"
            for request in requests:
                proc.stdin.write(json.dumps(request) + "\n")
                proc.stdin.flush()
                response = json.loads(proc.stdout.readline())
                assert response["ok"], response
            yield port
        finally:
            try:
                proc.stdin.write('{"op": "shutdown"}\n')
                proc.stdin.flush()
                proc.stdin.close()
            except (BrokenPipeError, ValueError, OSError):
                pass
            try:
                proc.wait(timeout=15)
            except subprocess.TimeoutExpired:  # pragma: no cover
                proc.kill()
                proc.wait()
        assert proc.returncode == 0

    def test_scrape_via_metrics_subcommand(self, roster_file, capsys):
        import json

        with self._serve_with_listener(
            roster_file, [{"op": "query", "value": "SMITH"}]
        ) as port:
            capsys.readouterr()
            assert main(["metrics", str(port)]) == 0
            text = capsys.readouterr().out
            assert "# TYPE serve_queries_total counter" in text
            assert "serve_queries_total 1" in text
            assert main(["metrics", str(port), "--json"]) == 0
            snap = json.loads(capsys.readouterr().out)
            assert snap["metrics"]["serve_queries_total"]["value"] == 1
            assert main(["metrics", str(port), "--events"]) == 0
            assert "events" in json.loads(capsys.readouterr().out)

    def test_metrics_subcommand_connection_refused(self, capsys):
        # Port 1 is never bound in the test environment.
        with pytest.raises(SystemExit, match="cannot scrape"):
            main(["metrics", "1", "--timeout", "0.5"])
