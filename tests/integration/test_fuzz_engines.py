"""Cross-engine fuzzing: one semantics, four implementations.

Hypothesis drives random datasets, thresholds and method stacks through
the scalar join, the vectorized join, the multiprocessing driver and the
FBF index; any divergence between them is a bug in exactly one place.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.index import FBFIndex
from repro.core.join import match_strings
from repro.core.matchers import build_matcher
from repro.distance.damerau import damerau_levenshtein
from repro.parallel.chunked import ChunkedJoin

datasets = st.lists(
    st.text(alphabet="AB1 -", min_size=1, max_size=9), min_size=1, max_size=8
)
methods = st.sampled_from(
    ["DL", "PDL", "Jaro", "Wink", "Ham", "FDL", "FPDL", "FBF",
     "LDL", "LPDL", "LF", "LFDL", "LFPDL", "LFBF", "SDX"]
)


class TestScalarVsVectorized:
    @settings(max_examples=60)
    @given(datasets, datasets, methods, st.integers(0, 3),
           st.sampled_from([0.7, 0.8, 0.9]))
    def test_counts_agree(self, left, right, method, k, theta):
        scalar = match_strings(
            left, right, build_matcher(method, k=k, theta=theta, scheme="alnum")
        )
        vector = ChunkedJoin(
            left, right, k=k, theta=theta, scheme_kind="alnum", chunk=16
        ).run(method)
        assert (scalar.match_count, scalar.diagonal_matches) == (
            vector.match_count,
            vector.diagonal_matches,
        ), method

    @settings(max_examples=30)
    @given(datasets, datasets, st.integers(1, 2))
    def test_match_sets_agree(self, left, right, k):
        scalar = match_strings(
            left,
            right,
            build_matcher("LFPDL", k=k, scheme="alnum"),
            record_matches=True,
        )
        vector = ChunkedJoin(
            left, right, k=k, scheme_kind="alnum", chunk=8, record_matches=True
        ).run("LFPDL")
        assert sorted(scalar.matches) == sorted(vector.matches)


class TestIndexVsJoin:
    @settings(max_examples=40)
    @given(datasets, st.integers(0, 2), st.integers(0, 10**9))
    def test_index_search_equals_row_of_join(self, pool, k, seed):
        rng = random.Random(seed)
        query = rng.choice(pool)
        idx = FBFIndex(pool, scheme="alnum")
        got = idx.search(query, k)
        want = sorted(
            i
            for i, s in enumerate(pool)
            if s and query and damerau_levenshtein(query, s) <= k
        )
        assert got == want


class TestSafetyNeverViolated:
    @settings(max_examples=40)
    @given(datasets, st.integers(0, 3))
    def test_every_filter_stack_superset_of_dl(self, strings, k):
        join = ChunkedJoin(
            strings, strings, k=k, scheme_kind="alnum",
            chunk=8, record_matches=True,
        )
        dl = set(join.run("DL").matches)
        for stack in ("FBF", "LF", "LFBF"):
            stack_matches = set(join.run(stack).matches)
            # Filter-only stacks pass a superset (except pairs DL would
            # accept only via empty strings, which LF handles: a length
            # difference within k always passes LF; FBF diff of empty
            # sigs is 0).
            assert dl <= stack_matches, stack
