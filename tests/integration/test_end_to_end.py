"""End-to-end integration tests across every layer of the system."""

import random

import pytest

from repro import ChunkedJoin, build_matcher, match_strings
from repro.data.datasets import FAMILIES, dataset_for_family
from repro.eval.experiments import run_string_experiment
from repro.linkage import RecordCorruptor, default_engine, generate_records
from repro.parallel.pool import parallel_match_strings


class TestZeroFalseNegativesEndToEnd:
    """The paper's headline guarantee, across all six data families."""

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_fpdl_recovers_all_matches(self, family):
        dp = dataset_for_family(family, 80, seed=13)
        kind = FAMILIES[family].kind
        join = ChunkedJoin(dp.clean, dp.error, k=1, scheme_kind=kind)
        dl = join.run("DL")
        for method in ("FDL", "FPDL", "LFDL", "LFPDL"):
            res = join.run(method)
            assert res.diagonal_matches == dp.n, (family, method)
            assert res.match_count == dl.match_count, (family, method)

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_match_sets_identical(self, family):
        dp = dataset_for_family(family, 50, seed=17)
        kind = FAMILIES[family].kind
        join = ChunkedJoin(
            dp.clean, dp.error, k=1, scheme_kind=kind, record_matches=True
        )
        dl = set(join.run("DL").matches)
        fpdl = set(join.run("FPDL").matches)
        assert dl == fpdl


class TestEnginesAgree:
    """Scalar, vectorized and multiprocess engines: one answer."""

    def test_three_engines_one_answer(self):
        dp = dataset_for_family("SSN", 60, seed=19)
        scalar = match_strings(
            dp.clean, dp.error, build_matcher("FPDL", k=1, scheme="numeric")
        )
        vector = ChunkedJoin(dp.clean, dp.error, k=1, scheme_kind="numeric").run(
            "FPDL"
        )
        pooled = parallel_match_strings(
            dp.clean, dp.error, "FPDL", k=1, scheme_kind="numeric", workers=2
        )
        counts = {
            (r.match_count, r.diagonal_matches) for r in (scalar, vector, pooled)
        }
        assert len(counts) == 1


class TestK2Experiment:
    def test_relaxed_threshold_admits_more(self):
        # Table 2 vs Table 1: k=2 passes many more filter candidates and
        # finds more (looser) matches, still with zero Type 2.
        r1 = run_string_experiment("SSN", 100, k=1, seed=23, methods=("DL", "FBF"))
        r2 = run_string_experiment("SSN", 100, k=2, seed=23, methods=("DL", "FBF"))
        assert r2.row("DL").type1 >= r1.row("DL").type1
        assert r2.row("FBF").match_count > r1.row("FBF").match_count
        assert r2.row("DL").type2 == 0


class TestRecordLinkageEndToEnd:
    def test_pipeline_from_generation_to_decision(self):
        rng = random.Random(29)
        records = generate_records(50, rng)
        corrupted = RecordCorruptor(
            fields_per_record=1, missing_rates={"ssn": 0.4}
        ).corrupt_many(records, rng)
        # 40% missing SSNs (the paper's reported rate) and one edit per
        # record: the point-and-threshold engine with FPDL still links
        # almost everything, because the other six fields carry it.
        result = default_engine("FPDL").link(records, corrupted)
        assert result.recall >= 0.9
        dl = default_engine("DL").link(records, corrupted)
        assert (result.true_positives, result.false_positives) == (
            dl.true_positives,
            dl.false_positives,
        )


class TestPublicAPI:
    def test_quickstart_from_readme(self):
        from repro import build_matcher, match_strings

        clean = ["123456789", "555443333"]
        dirty = ["123456780", "555443333"]
        matcher = build_matcher("FPDL", k=1, scheme="numeric")
        result = match_strings(clean, dirty, matcher)
        assert result.match_count == 2

    def test_version(self):
        import repro

        assert repro.__version__

    def test_all_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name
