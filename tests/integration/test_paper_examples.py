"""Every worked example in the paper's text, as executable assertions.

If the reproduction drifts from the paper's own arithmetic, these fail
first.
"""

import pytest

from repro.core.signatures import (
    alpha_signature,
    diff_bits,
    find_diff_bits,
    num_signature,
)
from repro.distance.damerau import damerau_levenshtein
from repro.distance.jaro import jaro, jaro_winkler
from repro.distance.pruned import pdl


class TestSection2Examples:
    def test_levenshtein_saturday_sunday(self):
        # "the Levenshtein distance between the words 'Saturday' and
        #  'Sunday' is 3"
        from repro.distance.levenshtein import levenshtein

        assert levenshtein("Saturday", "Sunday") == 3

    def test_figure1_sat_sun_cell(self):
        # "the distance between 'Sat' and 'Sun' is 2 because the
        #  intersection at 't' and 'n' is 2"
        assert damerau_levenshtein("Sat", "Sun") == 2

    def test_figure2_pdl_k1_immediate_termination(self):
        # "For k=1, PDL would terminate immediately because
        #  abs(|s|-|t|) > k"
        assert abs(len("Saturday") - len("Sunday")) > 1
        assert pdl("Saturday", "Sunday", 1) is False

    def test_jaro_smith_smiht(self):
        # n=1, m=5, r=1 -> 0.967
        assert jaro("SMITH", "SMIHT") == pytest.approx(0.967, abs=5e-4)

    def test_jaro_smith_jones_zero(self):
        assert jaro("SMITH", "JONES") == 0.0

    def test_winkler_smith_smiht(self):
        # wink = 0.967 + 3 * 0.1 * (1 - 0.967) = 0.977
        assert jaro_winkler("SMITH", "SMIHT") == pytest.approx(0.977, abs=5e-4)

    def test_length_filter_examples(self):
        # "'Joe' and 'Jose'; and 'Jose' and 'Josef' are approximate
        #  matches for k=1 but 'Joe' and 'Josef' are not."
        assert damerau_levenshtein("Joe", "Jose") == 1
        assert damerau_levenshtein("Jose", "Josef") == 1
        assert damerau_levenshtein("Joe", "Josef") == 2
        assert abs(len("Joe") - len("Josef")) > 1


class TestSection3Examples:
    def test_figure3_smith_signature(self):
        # "32-bit alphabetic FBF bit signature for 'SMITH'":
        # bits H, I, M, S, T set.
        sig = alpha_signature("SMITH")[0]
        for letter in "HIMST":
            assert sig >> (ord(letter) - ord("A")) & 1 == 1
        assert bin(sig).count("1") == 5

    def test_figure4_phone_signature(self):
        # "32-bit numeric FBF bit signature for '8005551212'":
        # 0:2, 1:2, 2:2, 5:3, 8:1 occurrences.
        sig = num_signature("8005551212")
        occur = {0: 2, 1: 2, 2: 2, 5: 3, 8: 1}
        for digit in range(10):
            for level in range(3):
                expected = 1 if occur.get(digit, 0) > level else 0
                assert sig >> (3 * digit + level) & 1 == expected, (digit, level)

    def test_phone_difference_example(self):
        # "The FBF difference between '213-333-3333' and '213-333-4444'
        #  would be 3 because three of the 4s would be recorded."
        m = (num_signature("213-333-3333"),)
        n = (num_signature("213-333-4444"),)
        assert find_diff_bits(m, n) == 3

    def test_repeated_threes_saturate(self):
        # "say a phone number '213-333-3333', the signature will only
        #  record three of the 3s"
        assert num_signature("213-333-3333") == num_signature("213333")


class TestSection4ProofExamples:
    def test_transposition_case(self):
        # s = "13245", t = "12345": |m XOR n| = 0.
        m = (num_signature("13245"),)
        n = (num_signature("12345"),)
        assert diff_bits(m, n) == 0
        assert damerau_levenshtein("13245", "12345") == 1

    def test_delete_case(self):
        m = (num_signature("123456"),)
        n = (num_signature("12345"),)
        assert diff_bits(m, n) == 1

    def test_insert_case(self):
        m = (num_signature("1234"),)
        n = (num_signature("12345"),)
        assert diff_bits(m, n) == 1

    def test_substitution_case(self):
        m = (num_signature("12346"),)
        n = (num_signature("12345"),)
        assert diff_bits(m, n) == 2

    def test_repeated_character_case(self):
        # "Consider s = '123456' and t = '1234566'. The second 6 is
        #  considered different than the first."
        m = (num_signature("123456"),)
        n = (num_signature("1234566"),)
        assert diff_bits(m, n) == 1

    def test_worst_case_2k(self):
        # k substitutions, each hitting the 2-bit worst case.
        s, t = "123", "456"
        m, n = (num_signature(s),), (num_signature(t),)
        k = damerau_levenshtein(s, t)
        assert diff_bits(m, n) == 2 * k
