"""Edge-coverage sweep: branches the mainline tests don't reach."""

import random

import pytest

from repro.core.index import FBFIndex
from repro.core.signatures import SignatureScheme, scheme_for
from repro.data.names import NameGenerator
from repro.io import read_records_csv, write_matches_csv, write_records_csv
from repro.linkage.records import Record


class TestCSVQuoting:
    def test_fields_with_commas_and_quotes_roundtrip(self, tmp_path):
        record = Record(
            first_name='MARY "MAE"',
            last_name="O'BRIEN, JR",
            address="12 OAK ST, APT 4",
            phone="2155551234",
            gender="F",
            ssn="123456789",
            birthdate="01021990",
        )
        path = tmp_path / "r.csv"
        write_records_csv(path, [record])
        assert read_records_csv(path) == [record]

    def test_matches_csv_quoting(self, tmp_path):
        record = Record(
            first_name="A,B",
            last_name="C",
            address="D",
            phone="1",
            gender="M",
            ssn="2",
            birthdate="3",
        )
        out = tmp_path / "m.csv"
        write_matches_csv(out, [(0, 0)], [record], [record])
        loaded = out.read_text().splitlines()
        assert '"A,B"' in loaded[1]


class TestNameGeneratorFallbacks:
    def test_tiny_alphabet_short_length_exhaustion(self):
        # A two-name seed gives a tiny bigram model; demanding many
        # unique 1-char names must exhaust and reroute quota to the
        # bulk length instead of hanging.
        gen = NameGenerator(["AB", "BA"])
        pool = gen.pool(30, {1: 10, 6: 20}, random.Random(0), include_seed=False)
        assert len(pool) == 30
        assert len(set(pool)) == 30

    def test_exclude_seed(self):
        gen = NameGenerator(["SMITH"])
        pool = gen.pool(5, {5: 5}, random.Random(1), include_seed=False)
        assert len(pool) == 5


class TestIndexCustomScheme:
    def test_custom_signature_scheme_object(self):
        # A width-1 custom scheme: bit per length mod 32.  Not safe as
        # an edit filter, but the index accepts any SignatureScheme; a
        # huge slack makes it pass-everything, so the verifier decides.
        scheme = SignatureScheme(
            "lenbit", width=1, generate=lambda s: (1 << (len(s) % 32),),
            slack=64,
        )
        idx = FBFIndex(["123", "124", "999"], scheme=scheme)
        assert idx.search("123", 1) == [0, 1]

    def test_explicit_stock_scheme_object(self):
        idx = FBFIndex(["OTTO", "OTTA"], scheme=scheme_for("alpha", 3))
        assert idx.search("OTTO", 1) == [0, 1]


class TestSchemeForLevels:
    def test_numeric_ignores_levels(self):
        # The numeric scheme is fixed-layout; levels apply to alpha only.
        assert scheme_for("numeric", 3).width == 1

    def test_alpha_levels_shape(self):
        for levels in (1, 2, 4):
            assert scheme_for("alpha", levels).width == levels
