"""Keep the example scripts healthy: run each one at tiny scale.

Examples are documentation; a broken example is a broken promise.  Each
script runs in-process (``runpy``) with small arguments so the whole
set finishes in seconds.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

#: script -> argv tail that keeps it fast
EXAMPLE_ARGS = {
    "quickstart.py": [],
    "deduplicate_names.py": ["120"],
    "health_department_linkage.py": ["40"],
    "scaling_study.py": ["300"],
    "blocking_vs_filtering.py": ["80"],
    "incremental_updates.py": ["60", "2"],
    "funnel_inspection.py": ["120"],
    "dedup_zipfian.py": ["300"],
}


def test_every_example_is_covered():
    scripts = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(EXAMPLE_ARGS), (
        "examples/ and EXAMPLE_ARGS out of sync — add the new script here"
    )


@pytest.mark.parametrize("script", sorted(EXAMPLE_ARGS))
def test_example_runs(script, capsys, monkeypatch):
    path = EXAMPLES_DIR / script
    monkeypatch.setattr(sys, "argv", [str(path)] + EXAMPLE_ARGS[script])
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} printed nothing"


def test_quickstart_teaches_the_guarantee(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["quickstart.py"])
    runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "diff_bits" in out
    assert "verified" in out
