"""Tests for CSV/string I/O and the `link` CLI subcommand."""

import random

import pytest

from repro.cli import main
from repro.io import (
    iter_strings,
    open_text,
    read_records_csv,
    read_strings,
    write_matches_csv,
    write_records_csv,
    write_strings,
)
from repro.linkage.records import FIELDS, RecordCorruptor, generate_records


@pytest.fixture
def record_files(tmp_path):
    rng = random.Random(3)
    records = generate_records(25, rng)
    corrupted = RecordCorruptor().corrupt_many(records, rng)
    left = tmp_path / "left.csv"
    right = tmp_path / "right.csv"
    write_records_csv(left, records)
    write_records_csv(right, corrupted)
    return left, right, records, corrupted


class TestRecordsCSV:
    def test_roundtrip(self, record_files):
        left, _, records, _ = record_files
        loaded = read_records_csv(left)
        assert loaded == records

    def test_partial_columns(self, tmp_path):
        path = tmp_path / "partial.csv"
        path.write_text("last_name,ssn\nSMITH,123456789\n")
        records = read_records_csv(path)
        assert records[0].last_name == "SMITH"
        assert records[0].first_name == ""  # missing column -> empty

    def test_header_case_insensitive(self, tmp_path):
        path = tmp_path / "caps.csv"
        path.write_text("LAST_NAME\nJONES\n")
        assert read_records_csv(path)[0].last_name == "JONES"

    def test_unknown_columns_ignored(self, tmp_path):
        path = tmp_path / "extra.csv"
        path.write_text("last_name,favourite_colour\nSMITH,teal\n")
        assert read_records_csv(path)[0].last_name == "SMITH"

    def test_no_schema_columns(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(ValueError, match="no schema columns"):
            read_records_csv(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError):
            read_records_csv(path)

    def test_header_only(self, tmp_path):
        path = tmp_path / "header.csv"
        path.write_text("last_name\n")
        with pytest.raises(ValueError, match="no data rows"):
            read_records_csv(path)


class TestStringsIO:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "s.txt"
        write_strings(path, ["A", "B"])
        assert read_strings(path) == ["A", "B"]

    def test_blank_lines_dropped(self, tmp_path):
        path = tmp_path / "s.txt"
        path.write_text("A\n\n  \nB\n")
        assert read_strings(path) == ["A", "B"]

    def test_empty_rejected(self, tmp_path):
        path = tmp_path / "s.txt"
        path.write_text("\n")
        with pytest.raises(ValueError):
            read_strings(path)

    def test_iter_strings_is_lazy_and_agrees(self, tmp_path):
        path = tmp_path / "s.txt"
        path.write_text("A\n\nB\nC\n")
        it = iter_strings(path)
        assert next(it) == "A"
        assert list(it) == ["B", "C"]
        assert list(iter_strings(path)) == read_strings(path)

    def test_gzip_by_suffix(self, tmp_path):
        import gzip

        path = tmp_path / "s.txt.gz"
        with gzip.open(path, "wt") as fh:
            fh.write("A\nB\n")
        assert read_strings(path) == ["A", "B"]

    def test_gzip_by_magic_bytes(self, tmp_path):
        """A renamed compressed extract (no .gz suffix) still loads."""
        import gzip

        path = tmp_path / "s.txt"
        with gzip.open(path, "wt") as fh:
            fh.write("A\nB\n")
        assert read_strings(path) == ["A", "B"]

    def test_open_text_tell_in_uncompressed_coordinates(self, tmp_path):
        import gzip

        path = tmp_path / "s.txt.gz"
        with gzip.open(path, "wt") as fh:
            fh.write("AA\nBB\n")
        with open_text(path) as fh:
            assert fh.readline() == "AA\n"
            token = fh.tell()
            assert token == 3
            fh.seek(token)
            assert fh.readline() == "BB\n"


class TestMatchesCSV:
    def test_writes_pairs(self, tmp_path, record_files):
        _, _, records, corrupted = record_files
        out = tmp_path / "matches.csv"
        count = write_matches_csv(out, [(0, 0), (1, 1)], records, corrupted)
        assert count == 2
        lines = out.read_text().splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("left_id,right_id,left_first_name")
        assert len(lines[0].split(",")) == 2 + 2 * len(FIELDS)


class TestLinkCommand:
    def test_end_to_end(self, record_files, tmp_path, capsys):
        left, right, records, _ = record_files
        out = tmp_path / "matches.csv"
        assert main(
            ["link", str(left), str(right), "--output", str(out)]
        ) == 0
        err = capsys.readouterr().err
        assert f"{len(records)} matches" in err
        assert "recall: 1.000" in err
        assert out.exists()
        assert len(out.read_text().splitlines()) == len(records) + 1

    def test_threshold_flag(self, record_files, capsys):
        left, right, _, _ = record_files
        # A cutoff above the total attainable points: nothing matches.
        main(["link", str(left), str(right), "--threshold", "100"])
        assert "recall: 0.000" in capsys.readouterr().err

    def test_missing_file(self, tmp_path):
        with pytest.raises(SystemExit, match="error"):
            main(["link", str(tmp_path / "a.csv"), str(tmp_path / "b.csv")])
