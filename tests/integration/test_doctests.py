"""Run every docstring example in the package as a doctest.

Doc examples are part of the public documentation; this keeps them
executable and true.
"""

import doctest
import importlib
import pkgutil

import pytest

import repro

MODULES = sorted(
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
)


@pytest.mark.parametrize("module_name", MODULES)
def test_module_doctests(module_name):
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        # Import-guarded optional tiers (e.g. repro.native._nb needs
        # numba); their docs are exercised where the extra is installed.
        pytest.skip(f"optional dependency missing: {exc}")
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module_name}"


def test_package_has_doctests_somewhere():
    # Sanity: the suite actually exercises examples, not just imports.
    total = 0
    for module_name in MODULES:
        try:
            module = importlib.import_module(module_name)
        except ImportError:
            continue
        finder = doctest.DocTestFinder()
        total += sum(len(t.examples) for t in finder.find(module))
    assert total >= 10
