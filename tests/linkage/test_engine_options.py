"""Option-surface tests for the linkage engine (blocking fields,
comparator mixes, record flags)."""

import random

import pytest

from repro.linkage.blocking import StandardBlocking
from repro.linkage.comparators import (
    ExactComparator,
    SoundexComparator,
    StringMatchComparator,
)
from repro.linkage.engine import LinkageEngine, default_engine
from repro.linkage.records import RecordCorruptor, generate_records


@pytest.fixture(scope="module")
def record_pair():
    rng = random.Random(71)
    records = generate_records(50, rng)
    corrupted = RecordCorruptor().corrupt_many(records, rng)
    return records, corrupted


class TestBlockingField:
    def test_block_on_birthdate(self, record_pair):
        records, corrupted = record_pair
        engine = default_engine("FPDL", blocking=StandardBlocking())
        engine.blocking_field = "birthdate"
        result = engine.link(records, corrupted)
        # Exact birthdate blocking loses records whose birthdate was
        # the edited field, keeps the rest.
        assert 0 < result.candidates < 50 * 50
        assert result.recall < 1.0 or result.candidates >= 50

    def test_block_on_ssn_vs_lastname_differ(self, record_pair):
        records, corrupted = record_pair
        results = {}
        for field in ("ssn", "last_name"):
            engine = default_engine("FPDL", blocking=StandardBlocking())
            engine.blocking_field = field
            results[field] = engine.link(records, corrupted).candidates
        assert results["ssn"] != results["last_name"]


class TestComparatorMixes:
    def test_soundex_name_comparators(self, record_pair):
        records, corrupted = record_pair
        engine = LinkageEngine(
            [
                SoundexComparator("first_name"),
                SoundexComparator("last_name"),
                StringMatchComparator("ssn", "FPDL", scheme="numeric"),
                StringMatchComparator("birthdate", "FPDL", scheme="numeric"),
                StringMatchComparator("phone", "FPDL", scheme="numeric"),
                ExactComparator("gender"),
                StringMatchComparator("address", "FPDL", scheme="alnum"),
            ]
        )
        result = engine.link(records, corrupted)
        # Soundex names lose some points but the other fields carry
        # most records over the threshold.
        assert result.recall > 0.8

    def test_subset_of_fields(self, record_pair):
        records, corrupted = record_pair
        from repro.linkage.scoring import PointThresholdScorer

        engine = LinkageEngine(
            [
                StringMatchComparator("ssn", "FPDL", scheme="numeric"),
                StringMatchComparator("last_name", "FPDL", scheme="alpha"),
            ],
            scorer=PointThresholdScorer(
                points={"ssn": 5.0, "last_name": 3.0}, threshold=8.0
            ),
        )
        result = engine.link(records, corrupted)
        assert result.candidates == 50 * 50
        assert result.recall > 0.9


class TestRecordFlag:
    def test_matches_recorded_when_enabled(self, record_pair):
        records, corrupted = record_pair
        engine = default_engine("FPDL")
        engine.record_matches = True
        result = engine.link(records[:10], corrupted[:10])
        assert sorted(result.matches) == [(i, i) for i in range(10)]

    def test_matches_empty_when_disabled(self, record_pair):
        records, corrupted = record_pair
        result = default_engine("FPDL").link(records[:10], corrupted[:10])
        assert result.matches == []
