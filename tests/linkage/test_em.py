"""Unit and integration tests for EM estimation of Fellegi-Sunter
parameters."""

import itertools
import random
from collections import Counter

import pytest

from repro.linkage.comparators import StringMatchComparator
from repro.linkage.em import collect_patterns, estimate_fs_parameters
from repro.linkage.records import RecordCorruptor, generate_records
from repro.linkage.scoring import Decision


def synthetic_patterns(
    n_pairs: int,
    prevalence: float,
    m: list[float],
    u: list[float],
    seed: int = 0,
) -> Counter:
    """Draw agreement patterns from a known two-class model."""
    rng = random.Random(seed)
    patterns: Counter = Counter()
    for _ in range(n_pairs):
        is_match = rng.random() < prevalence
        probs = m if is_match else u
        pattern = tuple(rng.random() < pr for pr in probs)
        patterns[pattern] += 1
    return patterns


class TestEstimateValidation:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            estimate_fs_parameters({})

    def test_zero_arity_rejected(self):
        with pytest.raises(ValueError):
            estimate_fs_parameters({(): 5})

    def test_ragged_patterns_rejected(self):
        with pytest.raises(ValueError):
            estimate_fs_parameters({(True,): 1, (True, False): 1})

    def test_field_name_count_mismatch(self):
        with pytest.raises(ValueError):
            estimate_fs_parameters({(True, False): 1}, fields=["only_one"])


class TestRecovery:
    def test_recovers_planted_parameters(self):
        true_m = [0.95, 0.9, 0.85]
        true_u = [0.02, 0.05, 0.1]
        patterns = synthetic_patterns(40_000, 0.05, true_m, true_u, seed=1)
        est = estimate_fs_parameters(patterns, fields=["a", "b", "c"])
        assert est.match_prevalence == pytest.approx(0.05, abs=0.02)
        for field, tm, tu in zip(("a", "b", "c"), true_m, true_u):
            assert est.m_probs[field] == pytest.approx(tm, abs=0.08)
            assert est.u_probs[field] == pytest.approx(tu, abs=0.05)

    def test_loglikelihood_monotone_convergence(self):
        patterns = synthetic_patterns(5000, 0.1, [0.9, 0.9], [0.1, 0.2], seed=2)
        loose = estimate_fs_parameters(patterns, max_iterations=2)
        tight = estimate_fs_parameters(patterns, max_iterations=100)
        assert tight.log_likelihood >= loose.log_likelihood - 1e-9
        assert tight.iterations <= 100

    def test_probabilities_in_open_interval(self):
        # Degenerate data (all-agree) must not push params to 0/1.
        patterns = Counter({(True, True): 100})
        est = estimate_fs_parameters(patterns)
        for f in est.fields:
            assert 0.0 < est.m_probs[f] < 1.0
            assert 0.0 < est.u_probs[f] < 1.0

    def test_default_field_names(self):
        est = estimate_fs_parameters({(True,): 3, (False,): 7})
        assert est.fields == ("f0",)


class TestToScorer:
    def test_scorer_roundtrip(self):
        patterns = synthetic_patterns(20_000, 0.05, [0.95, 0.9], [0.02, 0.05], seed=3)
        est = estimate_fs_parameters(patterns, fields=["x", "y"])
        scorer = est.to_scorer(upper=3.0, lower=0.0)
        assert scorer.classify({"x": True, "y": True}) == Decision.MATCH
        assert scorer.classify({"x": False, "y": False}) == Decision.NON_MATCH

    def test_degenerate_fields_dropped(self):
        patterns = synthetic_patterns(10_000, 0.1, [0.9, 0.5], [0.05, 0.5], seed=4)
        est = estimate_fs_parameters(patterns, fields=["good", "noise"])
        scorer = est.to_scorer()
        assert "good" in scorer.fields


class TestEndToEnd:
    def test_estimate_from_record_pairs(self):
        # Build a pair sample with known 1% prevalence from the record
        # generator and recover parameters good enough to classify.
        rng = random.Random(5)
        records = generate_records(120, rng)
        corrupted = RecordCorruptor().corrupt_many(records, rng)
        comparators = [
            StringMatchComparator("last_name", "FPDL", scheme="alpha"),
            StringMatchComparator("ssn", "FPDL", scheme="numeric"),
            StringMatchComparator("birthdate", "FPDL", scheme="numeric"),
        ]
        # Sample: every true pair plus a slab of random non-pairs.
        pairs = [(i, i) for i in range(120)]
        pairs += [
            (i, j)
            for i, j in itertools.product(range(120), repeat=2)
            if i != j and (i * 31 + j) % 13 == 0
        ]
        patterns = collect_patterns(comparators, records, corrupted, pairs)
        est = estimate_fs_parameters(
            patterns, fields=["last_name", "ssn", "birthdate"]
        )
        # True matches agree on nearly every field; non-matches rarely.
        for f in ("last_name", "ssn", "birthdate"):
            assert est.m_probs[f] > 0.5
            assert est.u_probs[f] < 0.2
        scorer = est.to_scorer(upper=5.0, lower=0.0)
        all_agree = {f: True for f in scorer.fields}
        none_agree = {f: False for f in scorer.fields}
        assert scorer.classify(all_agree) == Decision.MATCH
        assert scorer.classify(none_agree) == Decision.NON_MATCH
