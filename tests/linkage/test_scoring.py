"""Unit tests for the point-and-threshold and Fellegi-Sunter scorers."""

import math

import pytest

from repro.linkage.scoring import (
    Decision,
    FellegiSunterScorer,
    PointThresholdScorer,
)

ALL_AGREE = {
    "first_name": True,
    "last_name": True,
    "address": True,
    "phone": True,
    "gender": True,
    "ssn": True,
    "birthdate": True,
}
NONE_AGREE = {f: False for f in ALL_AGREE}


class TestPointThreshold:
    def test_all_agree_matches(self):
        s = PointThresholdScorer()
        assert s.classify(ALL_AGREE) == Decision.MATCH

    def test_none_agree_rejects(self):
        s = PointThresholdScorer()
        assert s.classify(NONE_AGREE) == Decision.NON_MATCH

    def test_score_is_sum_of_points(self):
        s = PointThresholdScorer(points={"a": 2.0, "b": 3.0}, threshold=4.0)
        assert s.score({"a": True, "b": True}) == 5.0
        assert s.score({"a": True, "b": False}) == 2.0

    def test_threshold_boundary_inclusive(self):
        s = PointThresholdScorer(points={"a": 4.0}, threshold=4.0)
        assert s.classify({"a": True}) == Decision.MATCH

    def test_missing_fields_treated_as_disagreement(self):
        s = PointThresholdScorer(points={"a": 5.0}, threshold=4.0)
        assert s.classify({}) == Decision.NON_MATCH

    def test_empty_points_rejected(self):
        with pytest.raises(ValueError):
            PointThresholdScorer(points={})

    def test_default_weights_sensible(self):
        # SSN + last name + birthdate should clear the default threshold;
        # gender alone must not.
        s = PointThresholdScorer()
        strong = dict(NONE_AGREE, ssn=True, last_name=True, birthdate=True)
        assert s.classify(strong) == Decision.MATCH
        weak = dict(NONE_AGREE, gender=True)
        assert s.classify(weak) == Decision.NON_MATCH


class TestFellegiSunter:
    def test_all_agree_matches(self):
        s = FellegiSunterScorer()
        assert s.classify(ALL_AGREE) == Decision.MATCH

    def test_none_agree_rejects(self):
        s = FellegiSunterScorer()
        assert s.classify(NONE_AGREE) == Decision.NON_MATCH

    def test_weights_are_log_likelihood_ratios(self):
        s = FellegiSunterScorer(
            m_probs={"x": 0.9}, u_probs={"x": 0.1}, upper=1.0, lower=0.0
        )
        assert s.score({"x": True}) == pytest.approx(math.log2(9))
        assert s.score({"x": False}) == pytest.approx(math.log2(0.1 / 0.9))

    def test_possible_band(self):
        s = FellegiSunterScorer(
            m_probs={"x": 0.9, "y": 0.9},
            u_probs={"x": 0.1, "y": 0.1},
            upper=6.0,
            lower=-1.0,
        )
        # One agreement and one disagreement cancel to ~0: inside the
        # clerical-review band.
        one_agrees = {"x": True, "y": False}
        assert s.classify(one_agrees) == Decision.POSSIBLE

    def test_field_set_mismatch_rejected(self):
        with pytest.raises(ValueError):
            FellegiSunterScorer(m_probs={"x": 0.9}, u_probs={"y": 0.1})

    def test_m_not_exceeding_u_rejected(self):
        with pytest.raises(ValueError):
            FellegiSunterScorer(m_probs={"x": 0.1}, u_probs={"x": 0.9})

    def test_probability_bounds_enforced(self):
        with pytest.raises(ValueError):
            FellegiSunterScorer(m_probs={"x": 1.0}, u_probs={"x": 0.5})

    def test_threshold_ordering_enforced(self):
        with pytest.raises(ValueError):
            FellegiSunterScorer(upper=0.0, lower=5.0)

    def test_agreement_monotonicity(self):
        # Adding an agreement never lowers the score.
        s = FellegiSunterScorer()
        base = s.score(NONE_AGREE)
        for f in ALL_AGREE:
            bumped = dict(NONE_AGREE)
            bumped[f] = True
            assert s.score(bumped) > base
