"""Unit tests for the record schema, generator and corruptor."""

import random

import pytest

from repro.data.errors import ErrorInjector
from repro.distance.damerau import damerau_levenshtein
from repro.linkage.records import FIELDS, Record, RecordCorruptor, generate_records


def _record(**overrides) -> Record:
    base = dict(
        first_name="MARY",
        last_name="JOHNSON",
        address="12 OAK ST",
        phone="2155551234",
        gender="F",
        ssn="123456789",
        birthdate="01021990",
    )
    base.update(overrides)
    return Record(**base)


class TestRecord:
    def test_field_access(self):
        r = _record()
        assert r["last_name"] == "JOHNSON"
        assert r["gender"] == "F"

    def test_unknown_field(self):
        with pytest.raises(KeyError):
            _record()["zip_code"]

    def test_replace_returns_new(self):
        r = _record()
        r2 = r.replace(last_name="JOHNSTON")
        assert r.last_name == "JOHNSON"
        assert r2.last_name == "JOHNSTON"
        assert r2.first_name == r.first_name

    def test_replace_unknown_field(self):
        with pytest.raises(KeyError):
            _record().replace(species="CAT")

    def test_items_ordered(self):
        assert [f for f, _ in _record().items()] == list(FIELDS)

    def test_immutability(self):
        with pytest.raises(AttributeError):
            _record().gender = "M"


class TestGenerateRecords:
    def test_count_and_fields(self):
        recs = generate_records(50, random.Random(0))
        assert len(recs) == 50
        for r in recs:
            assert r.gender in "MF"
            assert len(r.ssn) == 9 and r.ssn.isdigit()
            assert len(r.phone) == 10
            assert len(r.birthdate) == 8
            assert r.first_name and r.last_name and r.address

    def test_name_collisions_possible(self):
        # Names are drawn from pools, so duplicates occur in a large set
        # (real populations share last names).
        recs = generate_records(400, random.Random(1))
        assert len({r.last_name for r in recs}) < 400

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            generate_records(0, random.Random(0))

    def test_deterministic(self):
        a = generate_records(20, random.Random(3))
        b = generate_records(20, random.Random(3))
        assert a == b


class TestRecordCorruptor:
    def test_single_field_edit(self):
        corr = RecordCorruptor()
        rng = random.Random(0)
        rec = _record()
        for _ in range(50):
            bad = corr.corrupt(rec, rng)
            changed = [f for f in FIELDS if bad[f] != rec[f]]
            assert len(changed) == 1
            field = changed[0]
            assert damerau_levenshtein(rec[field], bad[field]) == 1

    def test_multiple_field_edits(self):
        corr = RecordCorruptor(fields_per_record=3)
        bad = corr.corrupt(_record(), random.Random(1))
        changed = [f for f in FIELDS if bad[f] != _record()[f]]
        assert len(changed) == 3

    def test_zero_edits(self):
        corr = RecordCorruptor(fields_per_record=0)
        assert corr.corrupt(_record(), random.Random(2)) == _record()

    def test_missing_rates(self):
        corr = RecordCorruptor(fields_per_record=0, missing_rates={"ssn": 1.0})
        bad = corr.corrupt(_record(), random.Random(3))
        assert bad.ssn == ""

    def test_missing_field_not_edited(self):
        corr = RecordCorruptor(missing_rates={"ssn": 1.0})
        rng = random.Random(4)
        for _ in range(30):
            bad = corr.corrupt(_record(), rng)
            assert bad.ssn == ""  # blanked, never edited back to content

    def test_unknown_error_field_rejected(self):
        with pytest.raises(ValueError):
            RecordCorruptor(error_fields=("shoe_size",))

    def test_unknown_missing_field_rejected(self):
        with pytest.raises(ValueError):
            RecordCorruptor(missing_rates={"shoe_size": 0.5})

    def test_negative_fields_rejected(self):
        with pytest.raises(ValueError):
            RecordCorruptor(fields_per_record=-1)

    def test_corrupt_many_alignment(self):
        recs = generate_records(30, random.Random(5))
        bad = RecordCorruptor().corrupt_many(recs, random.Random(6))
        assert len(bad) == 30
        for orig, corrupted in zip(recs, bad):
            assert orig != corrupted

    def test_custom_injector(self):
        from repro.data.errors import EditOp

        corr = RecordCorruptor(
            error_fields=("ssn",),
            injector=ErrorInjector(ops=[EditOp.SUBSTITUTE]),
        )
        bad = corr.corrupt(_record(), random.Random(7))
        assert len(bad.ssn) == 9 and bad.ssn != _record().ssn
