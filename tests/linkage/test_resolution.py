"""Unit tests for union-find and incremental entity resolution."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.linkage.records import RecordCorruptor, generate_records
from repro.linkage.resolution import (
    EntityResolver,
    UnionFind,
    resolve,
    resolve_sources,
)
from repro.linkage.scoring import PointThresholdScorer


class TestUnionFind:
    def test_initial_singletons(self):
        uf = UnionFind(3)
        assert uf.components() == [[0], [1], [2]]

    def test_union_and_find(self):
        uf = UnionFind(4)
        uf.union(0, 1)
        uf.union(2, 3)
        assert uf.connected(0, 1)
        assert not uf.connected(1, 2)
        uf.union(1, 2)
        assert uf.connected(0, 3)

    def test_union_idempotent(self):
        uf = UnionFind(2)
        r1 = uf.union(0, 1)
        r2 = uf.union(0, 1)
        assert r1 == r2

    def test_add_grows(self):
        uf = UnionFind()
        a = uf.add()
        b = uf.add()
        assert (a, b) == (0, 1)
        uf.union(a, b)
        assert uf.connected(0, 1)

    def test_len(self):
        assert len(UnionFind(5)) == 5

    @given(
        st.integers(1, 30),
        st.lists(st.tuples(st.integers(0, 29), st.integers(0, 29)), max_size=40),
    )
    def test_components_partition(self, n, edges):
        edges = [(a % n, b % n) for a, b in edges]
        comps = resolve(n, edges)
        flat = sorted(x for c in comps for x in c)
        assert flat == list(range(n))

    @given(
        st.integers(2, 20),
        st.lists(st.tuples(st.integers(0, 19), st.integers(0, 19)), max_size=30),
    )
    def test_connectivity_is_transitive_closure(self, n, edges):
        edges = [(a % n, b % n) for a, b in edges]
        uf = UnionFind(n)
        for a, b in edges:
            uf.union(a, b)
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(n))
        g.add_edges_from(edges)
        for comp in nx.connected_components(g):
            comp = sorted(comp)
            for other in comp[1:]:
                assert uf.connected(comp[0], other)


class TestResolve:
    def test_docstring_example(self):
        assert resolve(4, [(0, 2), (2, 3)]) == [[0, 2, 3], [1]]

    def test_no_matches(self):
        assert resolve(3, []) == [[0], [1], [2]]

    def test_chain(self):
        assert resolve(4, [(0, 1), (1, 2), (2, 3)]) == [[0, 1, 2, 3]]


class TestEntityResolver:
    @pytest.fixture(scope="class")
    def population(self):
        rng = random.Random(17)
        clean = generate_records(60, rng)
        dups = RecordCorruptor().corrupt_many(clean, rng)
        return clean, dups

    def test_duplicates_merge(self, population):
        clean, dups = population
        res = EntityResolver()
        res.add_all(clean)
        res.add_all(dups)
        n = len(clean)
        merged = sum(
            1 for i in range(n) if res.entity_of(i) == res.entity_of(n + i)
        )
        assert merged == n
        assert res.entity_count() <= n

    def test_distinct_people_stay_apart(self, population):
        clean, _ = population
        res = EntityResolver()
        res.add_all(clean)
        # Synthetic records are near-certainly distinct people.
        assert res.entity_count() >= len(clean) - 2

    def test_incremental_root_returned(self, population):
        clean, dups = population
        res = EntityResolver()
        first = res.add(clean[0])
        assert first == res.entity_of(0)
        second = res.add(dups[0])
        assert res.entity_of(0) == second == res.entity_of(1)

    def test_missing_indexed_fields_tolerated(self, population):
        clean, _ = population
        res = EntityResolver()
        res.add(clean[0])
        blanked = clean[0].replace(ssn="", phone="")
        res.add(blanked)
        # last_name/birthdate indexes still surface the candidate.
        assert res.entity_of(0) == res.entity_of(1)

    def test_custom_scorer_threshold(self, population):
        clean, dups = population
        strict = EntityResolver(
            scorer=PointThresholdScorer(threshold=17.5)  # all points needed
        )
        strict.add(clean[0])
        strict.add(dups[0])
        # One edited field loses exactness for ExactComparator-free
        # scorer? The resolver's internal matcher uses PDL, so a single
        # edit still agrees; blanked/edited fields may not. Either way
        # the API accepts a custom scorer and classifies consistently.
        assert strict.entity_count() in (1, 2)

    def test_len(self, population):
        clean, _ = population
        res = EntityResolver()
        res.add_all(clean[:5])
        assert len(res) == 5


class TestResolveSources:
    def test_cross_database_linkage(self):
        # Three "databases" holding overlapping, independently typo-ed
        # views of the same 30 clients — the paper's 11-database problem
        # in miniature.
        rng = random.Random(41)
        clients = generate_records(30, rng)
        corruptor = RecordCorruptor()
        sources = {
            "health": clients[:25],
            "social": corruptor.corrupt_many(clients[10:], rng),
            "housing": corruptor.corrupt_many(clients[:15], rng),
        }
        entities = resolve_sources(sources)
        # Every client appearing in several databases forms one entity.
        by_client: dict[int, set[str]] = {}
        flat = [
            (name, row) for name, recs in sources.items() for row in range(len(recs))
        ]
        # Client id for each (source, row):
        client_of = {}
        for row in range(25):
            client_of[("health", row)] = row
        for row in range(20):
            client_of[("social", row)] = 10 + row
        for row in range(15):
            client_of[("housing", row)] = row
        assert sum(len(v) for v in entities.values()) == len(flat)
        for members in entities.values():
            clients_here = {client_of[m] for m in members}
            assert len(clients_here) == 1, members
        # 30 distinct clients -> 30 entities.
        assert len(entities) == 30

    def test_provenance_labels(self):
        rng = random.Random(42)
        recs = generate_records(5, rng)
        entities = resolve_sources({"only": recs})
        members = sorted(m for v in entities.values() for m in v)
        assert members == [("only", i) for i in range(5)]

    def test_custom_resolver_reused(self):
        rng = random.Random(43)
        recs = generate_records(4, rng)
        resolver = EntityResolver()
        entities = resolve_sources({"a": recs}, resolver=resolver)
        assert len(resolver) == 4
        assert len(entities) == 4
