"""Unit tests for the four traditional blocking methods."""

import random

import pytest

from repro.data.errors import ErrorInjector
from repro.data.names import build_last_name_pool
from repro.distance.soundex import soundex
from repro.linkage.blocking import (
    BigramIndexing,
    CanopyClustering,
    FullProduct,
    SortedNeighbourhood,
    StandardBlocking,
)


@pytest.fixture(scope="module")
def name_pair():
    rng = random.Random(0)
    clean = build_last_name_pool(80, rng)
    dirty = ErrorInjector().inject_many(clean, rng)
    return clean, dirty


class TestFullProduct:
    def test_all_pairs(self):
        b = FullProduct()
        pairs = set(b.pairs(["a", "b"], ["x", "y", "z"]))
        assert len(pairs) == 6

    def test_reduction_ratio_zero(self):
        assert FullProduct().reduction_ratio(["a"], ["b"]) == 0.0


class TestStandardBlocking:
    def test_exact_key_blocks(self):
        b = StandardBlocking()
        pairs = set(b.pairs(["SMITH", "JONES"], ["SMITH", "BROWN"]))
        assert pairs == {(0, 0)}

    def test_empty_keys_not_blocked(self):
        b = StandardBlocking()
        assert set(b.pairs(["", "A"], ["", "A"])) == {(1, 1)}

    def test_soundex_key_tolerates_some_errors(self):
        b = StandardBlocking(key=soundex)
        pairs = set(b.pairs(["ROBERT"], ["RUPERT"]))
        assert pairs == {(0, 0)}

    def test_loses_matches_under_errors(self, name_pair):
        # The paper's core criticism of key blocking: errors in the key
        # silently drop true matches.
        clean, dirty = name_pair
        pairs = set(StandardBlocking().pairs(clean, dirty))
        retained = sum(1 for i, j in pairs if i == j)
        assert retained < len(clean)

    def test_reduction_ratio_high(self, name_pair):
        clean, dirty = name_pair
        assert StandardBlocking().reduction_ratio(clean, dirty) > 0.9


class TestSortedNeighbourhood:
    def test_window_validation(self):
        with pytest.raises(ValueError):
            SortedNeighbourhood(window=1)

    def test_adjacent_keys_paired(self):
        b = SortedNeighbourhood(window=3)
        pairs = set(b.pairs(["AAA", "ZZZ"], ["AAB", "ZZY"]))
        assert (0, 0) in pairs
        assert (1, 1) in pairs

    def test_cross_side_only(self):
        b = SortedNeighbourhood(window=10)
        pairs = list(b.pairs(["A", "B"], ["C", "D"]))
        assert len(pairs) == len(set(pairs))
        for i, j in pairs:
            assert 0 <= i < 2 and 0 <= j < 2

    def test_bigger_window_retains_more(self, name_pair):
        clean, dirty = name_pair
        small = {p for p in SortedNeighbourhood(3).pairs(clean, dirty)}
        large = {p for p in SortedNeighbourhood(9).pairs(clean, dirty)}
        assert small <= large


class TestBigramIndexing:
    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            BigramIndexing(threshold=0.0)
        with pytest.raises(ValueError):
            BigramIndexing(threshold=1.2)

    def test_exact_threshold_needs_same_bigrams(self):
        b = BigramIndexing(threshold=1.0)
        pairs = set(b.pairs(["ABAB"], ["BABA"]))
        # Same bigram set {AB, BA}: paired.
        assert pairs == {(0, 0)}

    def test_sub_lists_tolerate_errors(self):
        strict = set(BigramIndexing(1.0).pairs(["SMITH"], ["SMYTH"]))
        fuzzy = set(BigramIndexing(0.5).pairs(["SMITH"], ["SMYTH"]))
        assert strict == set()
        assert fuzzy == {(0, 0)}

    def test_no_duplicate_pairs(self, name_pair):
        clean, dirty = name_pair
        pairs = list(BigramIndexing(0.8).pairs(clean[:30], dirty[:30]))
        assert len(pairs) == len(set(pairs))


class TestCanopyClustering:
    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            CanopyClustering(loose=0.8, tight=0.2)

    def test_identical_keys_share_canopy(self):
        b = CanopyClustering(loose=0.3, tight=0.9)
        pairs = set(b.pairs(["SMITH"], ["SMITH"]))
        assert (0, 0) in pairs

    def test_dissimilar_keys_split(self):
        b = CanopyClustering(loose=0.5, tight=0.9)
        pairs = set(b.pairs(["AAAA"], ["ZZZZ"]))
        assert (0, 0) not in pairs

    def test_loose_canopies_retain_more(self, name_pair):
        clean, dirty = name_pair
        tight = set(CanopyClustering(0.6, 0.9).pairs(clean[:40], dirty[:40]))
        loose = set(CanopyClustering(0.1, 0.9).pairs(clean[:40], dirty[:40]))
        tight_diag = sum(1 for i, j in tight if i == j)
        loose_diag = sum(1 for i, j in loose if i == j)
        assert loose_diag >= tight_diag

    def test_no_duplicate_pairs(self, name_pair):
        clean, dirty = name_pair
        pairs = list(CanopyClustering(0.2, 0.8).pairs(clean[:30], dirty[:30]))
        assert len(pairs) == len(set(pairs))
