"""Unit and integration tests for the record-linkage engine."""

import random

import pytest

from repro.linkage.blocking import StandardBlocking
from repro.linkage.comparators import ExactComparator, StringMatchComparator
from repro.linkage.engine import LinkageEngine, LinkageResult, default_engine
from repro.linkage.records import RecordCorruptor, generate_records
from repro.linkage.scoring import FellegiSunterScorer, PointThresholdScorer


@pytest.fixture(scope="module")
def record_pair():
    rng = random.Random(42)
    records = generate_records(60, rng)
    corrupted = RecordCorruptor().corrupt_many(records, rng)
    return records, corrupted


class TestLinkageResult:
    def test_derived_metrics(self):
        r = LinkageResult(n_left=10, n_right=10, true_positives=8, false_positives=2)
        assert r.false_negatives == 2
        assert r.precision == 0.8
        assert r.recall == 0.8
        assert 0 < r.f1 < 1
        assert r.true_negatives == 100 - 8 - 2 - 2

    def test_zero_division_guards(self):
        r = LinkageResult(n_left=0, n_right=0)
        assert r.precision == 0.0 and r.recall == 0.0 and r.f1 == 0.0


class TestEngineValidation:
    def test_requires_comparators(self):
        with pytest.raises(ValueError):
            LinkageEngine([])

    def test_duplicate_fields_rejected(self):
        with pytest.raises(ValueError):
            LinkageEngine([ExactComparator("ssn"), ExactComparator("ssn")])

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError):
            LinkageEngine([ExactComparator("species")])


class TestLinking:
    def test_perfect_recall_on_single_edits(self, record_pair):
        records, corrupted = record_pair
        result = default_engine("FPDL").link(records, corrupted)
        assert result.true_positives == len(records)
        assert result.recall == 1.0

    def test_methods_agree(self, record_pair):
        records, corrupted = record_pair
        outcomes = {}
        for m in ("DL", "PDL", "FDL", "FPDL", "LFPDL"):
            r = default_engine(m).link(records, corrupted)
            outcomes[m] = (r.true_positives, r.false_positives)
        assert len(set(outcomes.values())) == 1

    def test_exact_only_engine_misses_multi_edit_records(self):
        # With three edited fields per record, exact matching drops
        # below the point threshold for SSN-affected records while
        # FPDL (k=1 per field) still tolerates every single-char edit.
        rng = random.Random(77)
        records = generate_records(40, rng)
        corrupted = RecordCorruptor(fields_per_record=3).corrupt_many(records, rng)
        exact = LinkageEngine(
            [
                ExactComparator(f)
                for f in (
                    "first_name",
                    "last_name",
                    "address",
                    "phone",
                    "gender",
                    "ssn",
                    "birthdate",
                )
            ]
        ).link(records, corrupted)
        tolerant = default_engine("FPDL").link(records, corrupted)
        assert tolerant.recall == 1.0
        assert exact.recall < 1.0

    def test_blocked_engine_compares_fewer_pairs(self, record_pair):
        records, corrupted = record_pair
        full = default_engine("FPDL").link(records, corrupted)
        blocked_engine = default_engine("FPDL", blocking=StandardBlocking())
        blocked = blocked_engine.link(records, corrupted)
        assert blocked.candidates < full.candidates
        # And key blocking can silently lose matches (the paper's point).
        assert blocked.true_positives <= full.true_positives

    def test_explicit_pairs(self, record_pair):
        records, corrupted = record_pair
        engine = default_engine("FPDL")
        result = engine.link(records, corrupted, pairs=[(i, i) for i in range(10)])
        assert result.candidates == 10
        assert result.true_positives == 10

    def test_record_matches_flag(self, record_pair):
        records, corrupted = record_pair
        engine = default_engine("FPDL")
        engine.record_matches = True
        result = engine.link(records[:10], corrupted[:10])
        assert (0, 0) in result.matches

    def test_fellegi_sunter_scorer(self, record_pair):
        records, corrupted = record_pair
        engine = default_engine("FPDL", scorer=FellegiSunterScorer())
        result = engine.link(records, corrupted)
        assert result.recall == 1.0

    def test_possibles_counted(self, record_pair):
        records, corrupted = record_pair
        scorer = FellegiSunterScorer(upper=60.0, lower=-100.0)
        engine = default_engine("FPDL", scorer=scorer)
        result = engine.link(records[:15], corrupted[:15])
        # Absurdly high upper bound: everything lands in the band.
        assert result.possibles > 0

    def test_point_scorer_threshold_sweep(self, record_pair):
        records, corrupted = record_pair
        lax = default_engine(
            "FPDL", scorer=PointThresholdScorer(threshold=2.0)
        ).link(records[:20], corrupted[:20])
        strict = default_engine(
            "FPDL", scorer=PointThresholdScorer(threshold=16.0)
        ).link(records[:20], corrupted[:20])
        assert lax.true_positives + lax.false_positives >= (
            strict.true_positives + strict.false_positives
        )
