"""Unit tests for the per-field record comparators."""

import pytest

from repro.linkage.comparators import (
    ExactComparator,
    SoundexComparator,
    StringMatchComparator,
)


class TestExactComparator:
    def test_agreement(self):
        c = ExactComparator("gender")
        c.prepare(["M", "F"], ["M", "M"])
        assert c.agrees(0, 0)
        assert c.agrees(0, 1)
        assert not c.agrees(1, 0)

    def test_empty_never_agrees(self):
        c = ExactComparator("ssn")
        c.prepare([""], [""])
        assert not c.agrees(0, 0)

    def test_case_sensitivity_default(self):
        c = ExactComparator("last_name")
        c.prepare(["Smith"], ["SMITH"])
        assert not c.agrees(0, 0)

    def test_casefold_option(self):
        c = ExactComparator("last_name", casefold=True)
        c.prepare(["Smith"], ["SMITH"])
        assert c.agrees(0, 0)


class TestStringMatchComparator:
    def test_single_edit_tolerated(self):
        c = StringMatchComparator("ssn", "FPDL", k=1, scheme="numeric")
        c.prepare(["123456789"], ["123456780"])
        assert c.agrees(0, 0)

    def test_two_edits_rejected_at_k1(self):
        c = StringMatchComparator("ssn", "FPDL", k=1, scheme="numeric")
        c.prepare(["123456789"], ["123456700"])
        assert not c.agrees(0, 0)

    def test_empty_fields_never_agree(self):
        c = StringMatchComparator("ssn", "DL", k=1)
        c.prepare([""], [""])
        assert not c.agrees(0, 0)
        c.prepare(["123"], [""])
        assert not c.agrees(0, 0)

    def test_method_stacks_agree(self):
        values_l = ["SMITH", "GARCIA", "NGUYEN"]
        values_r = ["SMYTH", "GARCIA", "WILSON"]
        decisions = {}
        for method in ("DL", "PDL", "FDL", "FPDL", "LFPDL"):
            c = StringMatchComparator("last_name", method, k=1, scheme="alpha")
            c.prepare(values_l, values_r)
            decisions[method] = [
                c.agrees(i, j) for i in range(3) for j in range(3)
            ]
        assert all(d == decisions["DL"] for d in decisions.values())

    def test_verified_pairs_diagnostic(self):
        c = StringMatchComparator("ssn", "FDL", k=1, scheme="numeric")
        c.prepare(["123456789"], ["123456780"])
        c.agrees(0, 0)
        assert c.verified_pairs == 1

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            StringMatchComparator("ssn", "NOPE")


class TestWeightedComparator:
    def test_cheap_keyboard_slips_tolerated(self):
        from repro.distance.weighted import keyboard_cost
        from repro.linkage.comparators import WeightedComparator

        c = WeightedComparator(
            "last_name",
            threshold=1.0,
            substitution_cost=keyboard_cost(0.5),
            scheme="alpha",
        )
        # SMITH -> ANITH: two substitutions, both QWERTY-adjacent
        # (S->A, M->N): total weighted cost 1.0, within threshold —
        # while two arbitrary substitutions would cost 2.0.
        c.prepare(["SMITH", "SMITH"], ["ANITH", "XYITH"])
        assert c.agrees(0, 0)
        assert not c.agrees(1, 1)

    def test_defaults_match_unit_osa(self):
        from repro.linkage.comparators import WeightedComparator

        c = WeightedComparator("ssn", threshold=1.0, scheme="numeric")
        c.prepare(["123456789"], ["123456780"])
        assert c.agrees(0, 0)
        c.prepare(["123456789"], ["123456700"])
        assert not c.agrees(0, 0)

    def test_empty_fields_never_agree(self):
        from repro.linkage.comparators import WeightedComparator

        c = WeightedComparator("ssn", scheme="numeric")
        c.prepare([""], [""])
        assert not c.agrees(0, 0)

    def test_invalid_threshold(self):
        from repro.linkage.comparators import WeightedComparator

        with pytest.raises(ValueError):
            WeightedComparator("ssn", threshold=-1.0)

    def test_filter_safety_with_fractional_threshold(self):
        # threshold 1.5 -> filter at k=2: transposition+cheap sub cases
        # must survive the filter.
        from repro.distance.weighted import keypad_cost
        from repro.linkage.comparators import WeightedComparator

        c = WeightedComparator(
            "phone",
            threshold=1.5,
            substitution_cost=keypad_cost(0.5),
            scheme="numeric",
        )
        # swap + one adjacent-key substitution: 1.0 + 0.5 = 1.5
        c.prepare(["2155551234"], ["1255551235"])
        assert c.agrees(0, 0)


class TestSoundexComparator:
    def test_phonetic_match(self):
        c = SoundexComparator("last_name")
        c.prepare(["ROBERT"], ["RUPERT"])
        assert c.agrees(0, 0)

    def test_mismatch(self):
        c = SoundexComparator("last_name")
        c.prepare(["SMITH"], ["JONES"])
        assert not c.agrees(0, 0)

    def test_empty_never_agrees(self):
        c = SoundexComparator("last_name")
        c.prepare([""], [""])
        assert not c.agrees(0, 0)

    def test_codes_precomputed(self):
        c = SoundexComparator("last_name")
        c.prepare(["WASHINGTON"], ["WASHINGTON"])
        assert c._left_codes == ["W252"]
