"""The compiled kernel tier: direct kernel pins, fallback contract,
backend equivalence.

Two test populations:

* ``needs_native`` tests pin the loaded provider's kernels bit-for-bit
  against the scalar/NumPy references — including the 63/64/65
  bit-parallel/banded boundary and empty strings.  They skip when no
  provider loads (no numba, no C compiler).
* The fallback tests run everywhere: requesting ``backend="native"``
  without a provider must warn once and produce the vectorized tier's
  exact results.
"""

import os

import numpy as np
import pytest

from repro import native
from repro._compat import reset_deprecation_warnings
from repro.core.plan import BACKEND_NAMES, JoinPlanner
from repro.core.popcount import popcount_batch_u32, popcount_batch_u64
from repro.core.vectorized import fbf_candidates as np_fbf_candidates
from repro.distance.codec import encode_raw
from repro.distance.damerau import damerau_levenshtein
from repro.distance.pruned import pdl
from repro.obs import StatsCollector
from repro.parallel.chunked import VectorEngine

HAVE_NATIVE = native.available()
needs_native = pytest.mark.skipif(
    not HAVE_NATIVE, reason="no compiled kernel provider in this env"
)


@pytest.fixture
def fresh_native():
    """Re-probe providers after env monkeypatching, restore after."""
    native.reset()
    reset_deprecation_warnings()
    yield
    native.reset()
    reset_deprecation_warnings()


def _strings_with_boundaries(seed: int = 3) -> list[str]:
    rng = np.random.default_rng(seed)
    alpha = "abcAB "
    out = ["", "a", "ab", "ba", "abc"]
    # 63/64/65 straddle the one-word bit-parallel limit; >64 pairs of
    # near-duplicates land on the banded path.
    for length in (5, 17, 63, 64, 65, 70):
        for _ in range(3):
            chars = rng.integers(0, len(alpha), size=length)
            out.append("".join(alpha[c] for c in chars))
        swapped = list(out[-1])
        if length >= 2:
            swapped[0], swapped[1] = swapped[1], swapped[0]
        out.append("".join(swapped))
        edited = list(out[-2])
        edited[length // 2] = "z"
        out.append("".join(edited))
    return out


# ---------------------------------------------------------------------------
# Direct kernel pins (provider required)
# ---------------------------------------------------------------------------


@needs_native
class TestSignatureKernels:
    def test_fbf_candidates_matches_numpy_row_major(self):
        rng = np.random.default_rng(11)
        L = rng.integers(0, 1 << 32, size=(37, 2), dtype=np.uint32)
        R = rng.integers(0, 1 << 32, size=(29, 2), dtype=np.uint32)
        ks = native.load_kernels()
        for bound in (0, 8, 24, 40, 64):
            ri, rj = np_fbf_candidates(L, R, bound)
            gi, gj = ks.fbf_candidates(L, R, bound)
            assert np.array_equal(gi, ri)
            assert np.array_equal(gj, rj)

    def test_fbf_candidates_u64_matches_popcount(self):
        rng = np.random.default_rng(12)
        L = rng.integers(0, 1 << 63, size=(21, 2), dtype=np.uint64)
        R = rng.integers(0, 1 << 63, size=(17, 2), dtype=np.uint64)
        db = np.zeros((21, 17), dtype=np.int64)
        for w in range(2):
            db += popcount_batch_u64(L[:, w][:, None] ^ R[:, w][None, :])
        ks = native.load_kernels()
        for bound in (0, 30, 70):
            ri, rj = np.nonzero(db <= bound)
            gi, gj = ks.fbf_candidates_u64(L, R, bound)
            assert np.array_equal(gi, ri.astype(np.int64))
            assert np.array_equal(gj, rj.astype(np.int64))

    def test_pair_masks_both_widths(self):
        rng = np.random.default_rng(13)
        ks = native.load_kernels()
        L32 = rng.integers(0, 1 << 32, size=(15, 3), dtype=np.uint32)
        R32 = rng.integers(0, 1 << 32, size=(10, 3), dtype=np.uint32)
        ii = rng.integers(0, 15, size=120).astype(np.int64)
        jj = rng.integers(0, 10, size=120).astype(np.int64)
        db = np.zeros(120, dtype=np.int64)
        for w in range(3):
            db += popcount_batch_u32(L32[ii, w] ^ R32[jj, w])
        got = ks.sig_pair_mask(L32, R32, ii, jj, 30)
        assert got.dtype == bool
        assert np.array_equal(got, db <= 30)
        L64 = L32.astype(np.uint64)
        R64 = R32.astype(np.uint64)
        db64 = np.zeros(120, dtype=np.int64)
        for w in range(3):
            db64 += popcount_batch_u64(L64[ii, w] ^ R64[jj, w])
        got64 = ks.sig_pair_mask_u64(L64, R64, ii, jj, 30)
        assert np.array_equal(got64, db64 <= 30)

    def test_1d_signature_vectors_accepted(self):
        rng = np.random.default_rng(14)
        L = rng.integers(0, 1 << 32, size=19, dtype=np.uint32)
        R = rng.integers(0, 1 << 32, size=13, dtype=np.uint32)
        ks = native.load_kernels()
        ri, rj = np_fbf_candidates(L, R, 12)
        gi, gj = ks.fbf_candidates(L, R, 12)
        assert np.array_equal(gi, ri) and np.array_equal(gj, rj)


@needs_native
class TestVerifierKernel:
    @pytest.mark.parametrize("k", [0, 1, 2, 3])
    @pytest.mark.parametrize("mode", [native.MODE_DL, native.MODE_PDL])
    def test_osa_decisions_match_scalar(self, k, mode):
        strings = _strings_with_boundaries()
        codes, lengths = encode_raw(strings)
        n = len(strings)
        rng = np.random.default_rng(15)
        ii = rng.integers(0, n, size=300).astype(np.int64)
        jj = rng.integers(0, n, size=300).astype(np.int64)
        # force every long-x-long combination (the banded path)
        long_idx = [i for i, s in enumerate(strings) if len(s) > 64]
        for a in long_idx:
            for b in long_idx:
                ii = np.append(ii, a)
                jj = np.append(jj, b)
        ks = native.load_kernels()
        got = ks.osa_decisions(codes, lengths, codes, lengths, ii, jj, k,
                               mode=mode)
        for p in range(len(ii)):
            s, t = strings[ii[p]], strings[jj[p]]
            if mode == native.MODE_PDL:
                want = pdl(s, t, k)
            else:
                want = damerau_levenshtein(s, t) <= k
            assert bool(got[p]) == want, (s, t, k, mode)

    def test_boundary_lengths_63_64_65(self):
        # One substitution and one transposition at each boundary
        # length: 63 (inside one word), 64 (full word), 65 (banded).
        ks = native.load_kernels()
        for length in (63, 64, 65):
            base = "ab" * (length // 2) + ("a" if length % 2 else "")
            sub = "z" + base[1:]
            trans = base[1] + base[0] + base[2:]
            far = "z" * length
            strings = [base, sub, trans, far]
            codes, lengths = encode_raw(strings)
            ii = np.zeros(3, dtype=np.int64)
            jj = np.arange(1, 4, dtype=np.int64)
            for k in (1, 2):
                got = ks.osa_decisions(
                    codes, lengths, codes, lengths, ii, jj, k,
                    mode=native.MODE_DL,
                )
                want = [
                    damerau_levenshtein(base, other) <= k
                    for other in (sub, trans, far)
                ]
                assert got.tolist() == want, (length, k)

    def test_empty_string_modes_disagree_as_specified(self):
        # Step 1 of the paper rejects any pair with an empty side (PDL);
        # plain DL compares by length.
        codes, lengths = encode_raw(["", "a", ""])
        ii = np.array([0, 0, 1], dtype=np.int64)
        jj = np.array([2, 1, 0], dtype=np.int64)
        ks = native.load_kernels()
        dl = ks.osa_decisions(codes, lengths, codes, lengths, ii, jj, 1,
                              mode=native.MODE_DL)
        pdl_got = ks.osa_decisions(codes, lengths, codes, lengths, ii, jj, 1,
                                   mode=native.MODE_PDL)
        assert dl.tolist() == [True, True, True]
        assert pdl_got.tolist() == [False, False, False]


@needs_native
class TestFusedRows:
    @pytest.mark.parametrize(
        "filters", [("length",), ("fbf",), ("length", "fbf")]
    )
    def test_fused_rows_matches_mask_chain(self, filters):
        rng = np.random.default_rng(16)
        nl, nr, k, bound = 23, 14, 2, 36
        sl = rng.integers(0, 1 << 63, size=(nl, 2), dtype=np.uint64)
        sr = rng.integers(0, 1 << 63, size=(nr, 2), dtype=np.uint64)
        ll = rng.integers(0, 12, size=nl).astype(np.int64)
        lr = rng.integers(0, 12, size=nr).astype(np.int64)
        db = np.zeros((nl, nr), dtype=np.int64)
        for w in range(2):
            db += popcount_batch_u64(sl[:, w][:, None] ^ sr[:, w][None, :])
        r0, r1 = 4, 19
        mask = np.ones((r1 - r0, nr), dtype=bool)
        want_passed = []
        for f in filters:
            fm = (
                np.abs(ll[r0:r1, None] - lr[None, :]) <= k
                if f == "length"
                else db[r0:r1] <= bound
            )
            mask &= fm
            want_passed.append(int(mask.sum()))
        wi, wj = np.nonzero(mask)
        ks = native.load_kernels()
        gi, gj, passed = ks.fused_rows_u64(
            sl, sr, ll, lr, r0, r1, bound=bound, k=k, filters=filters
        )
        assert np.array_equal(gi, wi.astype(np.int64) + r0)
        assert np.array_equal(gj, wj.astype(np.int64))
        assert list(passed) == want_passed

    def test_supports_filters(self):
        ks = native.load_kernels()
        assert ks.supports_filters(("length", "fbf"))
        assert ks.supports_filters(())
        assert not ks.supports_filters(("length", "soundex"))


# ---------------------------------------------------------------------------
# Engine and backend equivalence (provider required)
# ---------------------------------------------------------------------------


def _mixed_strings(seed: int, n: int) -> list[str]:
    rng = np.random.default_rng(seed)
    alpha = "abcdef12"
    out = []
    for _ in range(n):
        length = int(rng.integers(0, 80))
        chars = rng.integers(0, len(alpha), size=length)
        out.append("".join(alpha[c] for c in chars))
    return out


@needs_native
class TestBackendEquivalence:
    @pytest.mark.parametrize("method", ["FPDL", "LFPDL", "FDL", "LPDL"])
    def test_engine_native_equals_numpy(self, method):
        left = _mixed_strings(21, 120)
        right = _mixed_strings(22, 90)
        rn = VectorEngine(
            left, right, k=2, record_matches=True, kernels="native"
        ).run(method)
        rp = VectorEngine(
            left, right, k=2, record_matches=True, kernels="numpy"
        ).run(method)
        assert sorted(rn.matches) == sorted(rp.matches)
        assert rn.match_count == rp.match_count
        assert rn.diagonal_matches == rp.diagonal_matches
        assert rn.verified_pairs == rp.verified_pairs

    def test_planner_native_backend_matches_scalar(self):
        left = _mixed_strings(23, 70)
        right = _mixed_strings(24, 60)
        ref = JoinPlanner(left, right, k=1, record_matches=True).run(
            "FPDL", generator="all-pairs", backend="scalar"
        )
        c = StatsCollector("native")
        r = JoinPlanner(left, right, k=1, record_matches=True).run(
            "FPDL", generator="all-pairs", backend="native", collector=c
        )
        assert sorted(r.matches) == sorted(ref.matches)
        assert r.backend == "native"
        assert c.conserved
        assert c.pairs_considered == len(left) * len(right)

    def test_auto_plan_prefers_native_above_scalar_cutoff(self):
        strings = [f"{i:09d}" for i in range(1000)]
        plan = JoinPlanner(strings, list(strings), k=1).plan("FPDL")
        assert plan.backend.name == "native"
        assert "compiled kernels loaded" in plan.reason

    def test_self_join_composes_with_native(self):
        data = _mixed_strings(25, 60) + ["dup"] * 4
        ref = JoinPlanner(
            data, list(data), k=1, record_matches=True,
            collapse="off", self_join=False, memo="off",
        ).run("FPDL", generator="all-pairs", backend="scalar")
        for collapse in ("on", "off"):
            c = StatsCollector(f"native-self/{collapse}")
            r = JoinPlanner(
                data, data, k=1, record_matches=True,
                collapse=collapse, self_join=True,
            ).run("FPDL", backend="native", collector=c)
            assert sorted(r.matches) == sorted(ref.matches)
            assert r.match_count == ref.match_count
            assert r.diagonal_matches == ref.diagonal_matches
            assert c.pairs_considered == len(data) ** 2
            assert c.conserved

    def test_collapse_composes_with_native(self):
        base = ["", "a1", "a2", "ab", "ba1", "b2", "abab"]
        left = base * 3
        right = base * 2
        ref = JoinPlanner(
            left, right, k=1, record_matches=True,
            collapse="off", self_join=False, memo="off",
        ).run("FPDL", generator="all-pairs", backend="scalar")
        c = StatsCollector("native-collapse")
        r = JoinPlanner(
            left, right, k=1, record_matches=True, collapse="on",
        ).run("FPDL", backend="native", collector=c)
        assert sorted(r.matches) == sorted(ref.matches)
        assert r.match_count == ref.match_count
        assert c.pairs_considered == len(left) * len(right)
        assert c.conserved


# ---------------------------------------------------------------------------
# Resolution, fallback and status (run everywhere)
# ---------------------------------------------------------------------------


class TestResolution:
    def test_auto_never_warns(self, fresh_native, recwarn):
        native.resolve_kernels("auto")
        assert not [
            w for w in recwarn.list if issubclass(w.category, RuntimeWarning)
        ]

    def test_numpy_request_returns_none(self):
        assert native.resolve_kernels("numpy") is None
        assert native.resolve_kernels(None) is None

    def test_disabled_by_env(self, fresh_native, monkeypatch):
        monkeypatch.setenv("REPRO_NO_NATIVE", "1")
        native.reset()
        assert native.load_kernels() is None
        assert not native.available()
        status = native.native_status()
        assert status["disabled"] and not status["available"]

    def test_native_request_warns_once_when_disabled(
        self, fresh_native, monkeypatch
    ):
        monkeypatch.setenv("REPRO_NO_NATIVE", "1")
        native.reset()
        with pytest.warns(RuntimeWarning, match="REPRO_NO_NATIVE"):
            assert native.resolve_kernels("native") is None
        # warn-once: the second resolution is silent
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert native.resolve_kernels("native") is None

    def test_engine_falls_back_bit_identically(
        self, fresh_native, monkeypatch
    ):
        monkeypatch.setenv("REPRO_NO_NATIVE", "1")
        native.reset()
        left = _mixed_strings(31, 40)
        right = _mixed_strings(32, 30)
        with pytest.warns(RuntimeWarning):
            rn = VectorEngine(
                left, right, k=1, record_matches=True, kernels="native"
            ).run("FPDL")
        rp = VectorEngine(
            left, right, k=1, record_matches=True, kernels="numpy"
        ).run("FPDL")
        assert sorted(rn.matches) == sorted(rp.matches)
        assert rn.match_count == rp.match_count

    def test_backend_native_falls_back_to_vectorized_results(
        self, fresh_native, monkeypatch
    ):
        monkeypatch.setenv("REPRO_NO_NATIVE", "1")
        native.reset()
        left = _mixed_strings(33, 40)
        right = _mixed_strings(34, 30)
        with pytest.warns(RuntimeWarning):
            rn = JoinPlanner(left, right, k=1, record_matches=True).run(
                "FPDL", generator="all-pairs", backend="native"
            )
        rv = JoinPlanner(left, right, k=1, record_matches=True).run(
            "FPDL", generator="all-pairs", backend="vectorized"
        )
        assert sorted(rn.matches) == sorted(rv.matches)

    def test_require_native_raises_when_disabled(
        self, fresh_native, monkeypatch
    ):
        monkeypatch.setenv("REPRO_NO_NATIVE", "1")
        native.reset()
        with pytest.raises(RuntimeError, match="REPRO_NO_NATIVE"):
            native.require_native()

    def test_unknown_provider_pin_ignored(self, fresh_native, monkeypatch):
        # the quiet probe never raises: a typo'd pin falls back to the
        # normal provider order rather than crashing imports
        monkeypatch.setenv("REPRO_NATIVE", "fortran")
        native.reset()
        ks = native.load_kernels()
        assert ks is None or ks.kind in ("numba", "cc")

    def test_unknown_request_string_rejected(self):
        with pytest.raises(ValueError, match="unknown kernels request"):
            native.resolve_kernels("fortran")

    def test_status_shape(self):
        status = native.native_status()
        assert set(status) == {"available", "kind", "disabled", "providers"}
        assert set(status["providers"]) == {"numba", "cc"}

    def test_native_listed_as_backend(self):
        assert "native" in BACKEND_NAMES

    @needs_native
    def test_require_native_returns_kernelset(self):
        ks = native.require_native()
        assert ks.kind in ("numba", "cc")
        assert native.kind() == ks.kind

    @needs_native
    def test_provider_pin_honored(self, fresh_native, monkeypatch):
        # pin to whichever provider is actually active; the pin path
        # must resolve to exactly that provider
        active = native.kind()
        monkeypatch.setenv("REPRO_NATIVE", active)
        native.reset()
        assert native.kind() == active
