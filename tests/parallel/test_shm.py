"""Unit tests for the shared-memory worker pool and published sides.

The pool's lifecycle contract: lazy spawn, reuse across runs, automatic
respawn after a worker dies mid-task (with the dead worker's tasks
re-executed), idempotent close, and task exceptions surfacing in the
parent with the worker traceback attached.  The publication contract:
arrays round-trip through shared segments bit-exactly and the owner
tracks (and releases) every byte it published.
"""

import os
import signal

import numpy as np
import pytest

from repro.core.signatures import scheme_for
from repro.core.vectorized import signatures_for_scheme
from repro.distance.codec import encode_raw
from repro.parallel.shm import (
    SharedDatasets,
    SharedSide,
    WorkerPool,
    _resolve_ref,
    close_shared_pools,
    inline_side,
    pack_signatures,
    shared_pool,
)


def _double(x):
    return x * 2


def _boom(x):
    raise ValueError(f"boom on {x}")


def _kill_once(flag_path):
    """SIGKILL the worker the first time only (the flag file survives
    the corpse, so the re-executed task completes)."""
    if not os.path.exists(flag_path):
        open(flag_path, "w").close()
        os.kill(os.getpid(), signal.SIGKILL)
    return "survived"


class TestWorkerPool:
    def test_runs_tasks_in_order(self):
        with WorkerPool(workers=2) as pool:
            out = pool.run_tasks([(_double, i) for i in range(20)])
            assert out == [i * 2 for i in range(20)]
            assert pool.tasks_dispatched == 20
            assert pool.tasks_completed == 20

    def test_pool_reused_across_runs(self):
        with WorkerPool(workers=2) as pool:
            pool.run_tasks([(_double, 1)])
            pids = {p.pid for p in pool._procs}
            pool.run_tasks([(_double, 2)])
            assert {p.pid for p in pool._procs} == pids
            assert pool.respawns == 0

    def test_crash_respawns_and_reruns(self, tmp_path):
        flag = str(tmp_path / "boom.flag")
        with WorkerPool(workers=2) as pool:
            out = pool.run_tasks(
                [(_kill_once, flag), (_double, 21), (_double, 22)]
            )
            assert out == ["survived", 42, 44]
            assert pool.respawns >= 1
            # Respawned workers keep serving.
            assert pool.run_tasks([(_double, 5)]) == [10]

    def test_task_exception_raises_with_traceback(self):
        with WorkerPool(workers=2) as pool:
            with pytest.raises(RuntimeError, match="boom on 7"):
                pool.run_tasks([(_boom, 7)])
            # The pool survives a failing task.
            assert pool.run_tasks([(_double, 3)]) == [6]

    def test_close_idempotent(self):
        pool = WorkerPool(workers=2)
        pool.run_tasks([(_double, 1)])
        pool.close()
        assert pool.closed
        assert pool.alive_workers() == 0
        pool.close()

    def test_bytes_pickled_counted(self):
        with WorkerPool(workers=2) as pool:
            pool.run_tasks([(_double, "x" * 1000)])
            assert pool.bytes_pickled >= 1000


class TestHeartbeat:
    def test_heartbeat_reports_lifetime_and_per_worker(self):
        with WorkerPool(workers=2) as pool:
            pool.run_tasks([(_double, i) for i in range(8)])
            hb = pool.heartbeat()
            assert hb["workers"] == 2
            assert hb["alive"] == 2
            assert hb["tasks_dispatched"] == 8
            assert hb["tasks_completed"] == 8
            assert hb["uptime_s"] >= 0.0
            per = hb["per_worker"]
            assert per and sum(w["tasks"] for w in per.values()) == 8
            for w in per.values():
                assert w["alive"] is True
                assert 0.0 <= w["busy_ratio"]
                assert w["age_s"] >= 0.0

    def test_heartbeat_before_any_run(self):
        pool = WorkerPool(workers=2)
        hb = pool.heartbeat()
        assert hb["alive"] == 0
        assert hb["uptime_s"] == 0.0
        assert hb["per_worker"] == {}
        pool.close()

    def test_publish_pool_metrics(self):
        from repro.obs.events import EventLog
        from repro.obs.metrics import MetricsRegistry
        from repro.parallel.shm import publish_pool_metrics

        reg = MetricsRegistry()
        events = EventLog()
        with WorkerPool(workers=2) as pool:
            pool.run_tasks([(_double, i) for i in range(6)])
            hb = publish_pool_metrics(pool, reg, events)
        assert reg.gauge("pool_workers").value == 2
        assert reg.counter("pool_tasks_completed_total").value == 6
        per_worker_tasks = [
            inst.value
            for name, labels, inst in reg.series()
            if name == "pool_worker_tasks"
        ]
        assert sum(per_worker_tasks) == 6
        assert hb["tasks_completed"] == 6
        # No respawn happened, so no respawn event.
        assert not any(e["kind"] == "worker_respawn" for e in events.tail())

    def test_publish_counters_monotone_across_polls(self):
        from repro.obs.metrics import MetricsRegistry
        from repro.parallel.shm import publish_pool_metrics

        reg = MetricsRegistry()
        with WorkerPool(workers=2) as pool:
            pool.run_tasks([(_double, 1)])
            publish_pool_metrics(pool, reg)
            first = reg.counter("pool_tasks_completed_total").value
            pool.run_tasks([(_double, 2), (_double, 3)])
            publish_pool_metrics(pool, reg)
            second = reg.counter("pool_tasks_completed_total").value
        assert (first, second) == (1, 3)

    def test_respawn_event_emitted_once(self, tmp_path):
        from repro.obs.events import EventLog
        from repro.obs.metrics import MetricsRegistry
        from repro.parallel.shm import publish_pool_metrics

        reg = MetricsRegistry()
        events = EventLog()
        flag = str(tmp_path / "boom.flag")
        with WorkerPool(workers=2) as pool:
            pool.run_tasks([(_kill_once, flag), (_double, 1)])
            publish_pool_metrics(pool, reg, events)
            respawn_events = [
                e for e in events.tail() if e["kind"] == "worker_respawn"
            ]
            assert len(respawn_events) == 1
            assert respawn_events[0]["count"] >= 1
            # A second poll without new deaths emits nothing further.
            publish_pool_metrics(pool, reg, events)
            assert (
                sum(1 for e in events.tail() if e["kind"] == "worker_respawn")
                == 1
            )
            assert reg.counter("pool_respawns_total").value >= 1


def _pid(_x):
    return os.getpid()


class TestAffinityPool:
    def test_slots_route_to_stable_workers(self):
        with WorkerPool(workers=2, affinity=True) as pool:
            out = pool.run_tasks(
                [(_pid, i) for i in range(4)], slots=[0, 1, 0, 1]
            )
            assert out[0] == out[2]
            assert out[1] == out[3]
            assert out[0] != out[1]
            # The same slots hit the same workers on a later run.
            again = pool.run_tasks([(_pid, 0), (_pid, 1)], slots=[0, 1])
            assert again == [out[0], out[1]]

    def test_default_slot_is_task_index(self):
        with WorkerPool(workers=2, affinity=True) as pool:
            a, b = pool.run_tasks([(_pid, 0), (_pid, 1)])
            assert a != b

    def test_slots_length_validated(self):
        with WorkerPool(workers=2, affinity=True) as pool:
            with pytest.raises(ValueError, match="slots"):
                pool.run_tasks([(_double, 1)], slots=[0, 1])

    def test_crash_respawns_in_the_same_slot(self, tmp_path):
        flag = str(tmp_path / "slot.flag")
        with WorkerPool(workers=2, affinity=True) as pool:
            pool.run_tasks([(_double, 0), (_double, 1)], slots=[0, 1])
            before = pool.slot_pids()
            out = pool.run_tasks(
                [(_kill_once, flag), (_double, 9)], slots=[0, 1]
            )
            assert out == ["survived", 18]
            after = pool.slot_pids()
            assert len(after) == 2
            assert after[1] == before[1]  # untouched slot kept its pid
            assert after[0] != before[0]  # crashed slot respawned
            assert pool.respawns >= 1

    def test_stale_worker_gauges_pruned_after_respawn(self, tmp_path):
        from repro.obs.events import EventLog
        from repro.obs.metrics import MetricsRegistry
        from repro.parallel.shm import publish_pool_metrics

        reg = MetricsRegistry()
        events = EventLog()
        flag = str(tmp_path / "prune.flag")
        with WorkerPool(workers=2, affinity=True) as pool:
            pool.run_tasks([(_double, 1), (_double, 2)], slots=[0, 1])
            publish_pool_metrics(pool, reg, events)
            first_pids = set(pool._published_pids)
            pool.run_tasks([(_kill_once, flag)], slots=[0])
            publish_pool_metrics(pool, reg, events)
            second_pids = set(pool._published_pids)
            dead = first_pids - second_pids
            assert dead  # the killed worker's pid left the roster
            snap = reg.snapshot()["metrics"]
            for pid in dead:
                assert not any(f'pid="{pid}"' in name for name in snap)
            for pid in second_pids:
                assert f'pool_worker_alive{{pid="{pid}"}}' in snap
            respawn_events = [
                e for e in events.tail() if e["kind"] == "worker_respawn"
            ]
            assert len(respawn_events) == 1


class TestSharedPool:
    def test_process_wide_reuse(self):
        a = shared_pool(2)
        a.run_tasks([(_double, 1)])
        hits = a.reuse_hits
        b = shared_pool(2)
        assert b is a
        assert a.reuse_hits == hits + 1

    def test_affinity_pools_keyed_separately(self):
        a = shared_pool(2)
        b = shared_pool(2, affinity=True)
        assert a is not b
        assert b.affinity and not a.affinity
        assert shared_pool(2, affinity=True) is b

    def test_closed_pool_replaced(self):
        a = shared_pool(2)
        a.close()
        b = shared_pool(2)
        assert b is not a
        assert b.run_tasks([(_double, 4)]) == [8]


NAMES = ["SMITH", "SMYTH", "", "JONES", "VERYLONGLASTNAME", "JONSE", "SMITH"]


class TestPublication:
    def test_pack_signatures_round_width(self):
        sigs = np.arange(18, dtype=np.uint32).reshape(6, 3)
        packed = pack_signatures(sigs)
        assert packed.dtype == np.uint64
        assert packed.shape == (6, 2)
        # Odd widths are zero-padded, so the unpacked view's first
        # three columns equal the original words.
        back = packed.view(np.uint32).reshape(6, 4)[:, :3]
        assert np.array_equal(back, sigs)

    def test_shared_side_round_trips(self):
        scheme = scheme_for("alpha", 2)
        side = SharedSide(NAMES, scheme=scheme)
        try:
            assert side.n == len(NAMES)
            assert side.bytes_shared > 0
            codes, lengths = encode_raw(NAMES)
            assert np.array_equal(_resolve_ref(side.arrays.codes), codes)
            assert np.array_equal(_resolve_ref(side.arrays.lengths), lengths)
            expect = pack_signatures(signatures_for_scheme(NAMES, scheme))
            assert np.array_equal(_resolve_ref(side.arrays.sigs), expect)
        finally:
            side.close()

    def test_inline_side_matches_shared(self):
        scheme = scheme_for("alpha", 2)
        side = SharedSide(NAMES, scheme=scheme)
        try:
            inline = inline_side(NAMES, scheme=scheme)
            assert np.array_equal(
                _resolve_ref(inline.codes), _resolve_ref(side.arrays.codes)
            )
            assert inline.codes[0] == "inline"
        finally:
            side.close()

    def test_shared_datasets_self_join_publishes_vid(self):
        scheme = scheme_for("alpha", 2)
        ds = SharedDatasets(NAMES, list(NAMES), scheme=scheme, self_join=True)
        try:
            assert ds.left.vid is not None
            vid = _resolve_ref(ds.left.vid)
            # Value identity, not position: the two JON* rows differ,
            # equal strings share an id.
            assert vid[0] != vid[1]
            assert vid[0] == vid[6]
            assert len(set(vid.tolist())) == len(set(NAMES))
        finally:
            ds.close()

    def test_close_releases_segments(self):
        scheme = scheme_for("alpha", 2)
        side = SharedSide(NAMES, scheme=scheme)
        name = side.arrays.codes[1]
        side.close()
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


def teardown_module(module):
    close_shared_pools()
