"""Equivalence tests for the multiprocessing join driver."""

import pytest

from repro.core.join import match_strings
from repro.core.matchers import build_matcher
from repro.data.datasets import dataset_for_family
from repro.parallel.pool import parallel_match_strings


@pytest.fixture(scope="module")
def ssn_pair():
    return dataset_for_family("SSN", 40, seed=9)


class TestParallelMatchStrings:
    def test_sequential_shortcircuit(self, ssn_pair):
        res = parallel_match_strings(
            ssn_pair.clean, ssn_pair.error, "FPDL", k=1,
            scheme_kind="numeric", workers=1,
        )
        ref = match_strings(
            ssn_pair.clean,
            ssn_pair.error,
            build_matcher("FPDL", k=1, scheme="numeric"),
        )
        assert (res.match_count, res.diagonal_matches) == (
            ref.match_count,
            ref.diagonal_matches,
        )

    def test_two_workers_equal_sequential(self, ssn_pair):
        par = parallel_match_strings(
            ssn_pair.clean, ssn_pair.error, "FPDL", k=1,
            scheme_kind="numeric", workers=2,
        )
        seq = parallel_match_strings(
            ssn_pair.clean, ssn_pair.error, "FPDL", k=1,
            scheme_kind="numeric", workers=1,
        )
        assert (par.match_count, par.diagonal_matches, par.verified_pairs) == (
            seq.match_count,
            seq.diagonal_matches,
            seq.verified_pairs,
        )

    def test_record_matches_globally_indexed(self, ssn_pair):
        par = parallel_match_strings(
            ssn_pair.clean, ssn_pair.error, "DL", k=1,
            workers=2, record_matches=True,
        )
        seq = match_strings(
            ssn_pair.clean,
            ssn_pair.error,
            build_matcher("DL", k=1),
            record_matches=True,
        )
        assert sorted(par.matches) == sorted(seq.matches)

    def test_small_input_avoids_pool(self):
        # len(left) < 2 * workers short-circuits to in-process.
        res = parallel_match_strings(["123"], ["123"], "DL", k=0, workers=8)
        assert res.match_count == 1

    def test_diagonal_counts_survive_partitioning(self, ssn_pair):
        # The per-slice diagonal must be re-based to global indices.
        par = parallel_match_strings(
            ssn_pair.clean, ssn_pair.error, "DL", k=1, workers=3,
        )
        assert par.diagonal_matches == len(ssn_pair.clean)
