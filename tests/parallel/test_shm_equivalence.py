"""Property test: the hybrid backend equals the all-pairs scalar reference.

Same guarantee the plan-equivalence suite pins for the single-process
backends, restated for the shared-memory pool: for every method stack
and every generator that is safe for it, ``backend="hybrid"`` returns
the identical match set, identical funnel counters and a conserved
funnel — including the collapsed/weighted and self-join variants, where
per-worker collectors must merge back into original-pair units.

The reference runs with ``self_join=False, collapse="off", memo="off"``
so it walks the full product with value-identity diagonal semantics —
exactly what a dense hybrid run over published sides computes.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.matchers import METHOD_NAMES, method_registry
from repro.core.plan import (
    FBFIndexGenerator,
    JoinPlanner,
    LengthBucketGenerator,
    PassJoinGenerator,
    PrefixQgramGenerator,
)
from repro.obs import StatsCollector
from repro.parallel.shm import close_shared_pools

REGISTRY = method_registry()

strings = st.lists(
    st.text(alphabet="ab12", max_size=6), min_size=0, max_size=12
)


def _safe_generators(method: str) -> list[str]:
    spec = REGISTRY[method]
    names = ["all-pairs"]
    if LengthBucketGenerator().is_safe_for(spec):
        names.append("length-bucket")
    if FBFIndexGenerator().is_safe_for(spec):
        names.append("fbf-index")
    if PassJoinGenerator().is_safe_for(spec):
        names.append("pass-join")
    if PrefixQgramGenerator().is_safe_for(spec):
        names.append("prefix")
    return names


def _reference(left, right, method):
    return JoinPlanner(
        left, right, k=1, record_matches=True,
        self_join=False, collapse="off", memo="off",
    ).run(method, generator="all-pairs", backend="scalar")


@pytest.mark.parametrize("method", METHOD_NAMES)
@settings(max_examples=10, deadline=None)
@given(left=strings, right=strings)
def test_hybrid_matches_reference(method, left, right):
    ref = _reference(left, right, method)
    expected = sorted(ref.matches)
    for generator in _safe_generators(method):
        c = StatsCollector(f"hybrid/{generator}")
        planner = JoinPlanner(
            left, right, k=1, record_matches=True, workers=2,
            self_join=False, collapse="off", memo="off", collector=c,
        )
        r = planner.run(method, generator=generator, backend="hybrid")
        assert r.backend == "hybrid"
        assert sorted(r.matches) == expected, (
            f"{method} under hybrid/{generator} diverged"
        )
        assert r.match_count == ref.match_count
        assert r.diagonal_matches == ref.diagonal_matches
        assert c.pairs_considered == len(left) * len(right)
        assert c.conserved, f"{method} hybrid/{generator} leaked pairs"
        assert c.matched == ref.match_count


dup_strings = st.lists(
    st.sampled_from(["", "a1", "a2", "ab", "ba1", "b2", "abab"]),
    min_size=0,
    max_size=12,
)


@pytest.mark.parametrize("method", ["DL", "FPDL", "Wink", "SDX"])
@settings(max_examples=6, deadline=None)
@given(left=dup_strings, right=dup_strings)
def test_collapsed_hybrid_matches_reference(method, left, right):
    """collapse='on' over the hybrid backend: per-worker funnels come
    back in weighted units and still reconcile with the uncollapsed
    scalar reference."""
    ref = _reference(left, right, method)
    c = StatsCollector("hybrid-collapsed")
    planner = JoinPlanner(
        left, right, k=1, record_matches=True, workers=2,
        collapse="on", collector=c,
    )
    r = planner.run(method, generator="all-pairs", backend="hybrid")
    assert sorted(r.matches) == sorted(ref.matches)
    assert r.match_count == ref.match_count
    assert c.pairs_considered == len(left) * len(right)
    assert c.conserved
    assert c.matched == ref.match_count


@pytest.mark.parametrize("method", ["DL", "FPDL", "Jaro"])
@settings(max_examples=6, deadline=None)
@given(values=dup_strings)
def test_self_join_hybrid_matches_reference(method, values):
    """Content-equal sides: the hybrid run uses published value-identity
    codes for the diagonal, matching the scalar reference exactly."""
    ref = _reference(values, list(values), method)
    c = StatsCollector("hybrid-self")
    planner = JoinPlanner(
        values, list(values), k=1, record_matches=True, workers=2,
        self_join=False, collapse="off", memo="off", collector=c,
    )
    r = planner.run(method, generator="all-pairs", backend="hybrid")
    assert sorted(r.matches) == sorted(ref.matches)
    assert r.diagonal_matches == ref.diagonal_matches
    assert c.conserved


def teardown_module(module):
    close_shared_pools()
