"""Option-surface tests for ChunkedJoin (variants, schemes, levels)."""

import pytest

from repro.core.join import match_strings
from repro.core.matchers import build_matcher
from repro.data.datasets import dataset_for_family
from repro.parallel.chunked import ChunkedJoin, VectorEngine, _group_by_value

import numpy as np


@pytest.fixture(scope="module")
def ad_pair():
    return dataset_for_family("Ad", 50, seed=31)


class TestSchemeOptions:
    def test_alnum_scheme_on_addresses(self, ad_pair):
        join = ChunkedJoin(ad_pair.clean, ad_pair.error, k=1, scheme_kind="alnum")
        assert join.scheme.name == "alnum2"
        res = join.run("FPDL")
        matcher = build_matcher("FPDL", k=1, scheme="alnum")
        ref = match_strings(ad_pair.clean, ad_pair.error, matcher)
        assert (res.match_count, res.diagonal_matches) == (
            ref.match_count,
            ref.diagonal_matches,
        )

    def test_levels_parameter(self, ad_pair):
        j1 = ChunkedJoin(ad_pair.clean, ad_pair.error, k=1, scheme_kind="alnum", levels=1)
        j3 = ChunkedJoin(ad_pair.clean, ad_pair.error, k=1, scheme_kind="alnum", levels=3)
        assert j1.sigs_l.shape[1] == 2  # 1 alpha word + 1 numeric
        assert j3.sigs_l.shape[1] == 4
        # Deeper signatures pass fewer or equal candidates.
        assert j3.run("FBF").match_count <= j1.run("FBF").match_count
        # Verified results identical regardless.
        assert j1.run("FPDL").match_count == j3.run("FPDL").match_count

    def test_jaro_variant_standard(self):
        left = ["SMITH"]
        right = ["SMIHT"]
        paper = ChunkedJoin(left, right, theta=0.95, variant="paper")
        standard = ChunkedJoin(left, right, theta=0.95, variant="standard")
        # 0.967 (paper) passes theta=0.95; 0.933 (standard) does not.
        assert paper.run("Jaro").match_count == 1
        assert standard.run("Jaro").match_count == 0

    def test_sdx_codes_cached(self, ad_pair):
        join = ChunkedJoin(ad_pair.clean, ad_pair.error, k=1)
        join.run("SDX")
        first = join._sdx_l
        join.run("SDX")
        assert join._sdx_l is first  # computed once


class TestChunkSizing:
    def test_filter_chunk_never_below_dp_chunk(self):
        join = ChunkedJoin(["AB"], ["AB"], chunk=1 << 18, filter_chunk=1 << 4)
        assert join.filter_chunk == 1 << 18

    def test_filter_chunk_does_not_change_results(self, ad_pair):
        small = ChunkedJoin(
            ad_pair.clean, ad_pair.error, k=1, filter_chunk=1 << 6
        )
        big = ChunkedJoin(
            ad_pair.clean, ad_pair.error, k=1, filter_chunk=1 << 20
        )
        for method in ("FBF", "LFPDL", "Ham", "SDX"):
            a, b = small.run(method), big.run(method)
            assert (a.match_count, a.diagonal_matches) == (
                b.match_count,
                b.diagonal_matches,
            ), method


class TestLengthBucketing:
    def test_group_by_value(self):
        groups = _group_by_value(np.array([3, 5, 3, 7, 5, 3]))
        assert set(groups) == {3, 5, 7}
        assert sorted(groups[3].tolist()) == [0, 2, 5]
        assert sorted(groups[5].tolist()) == [1, 4]

    def test_group_by_value_empty(self):
        assert _group_by_value(np.array([], dtype=np.int64)) == {}

    def test_length_pairs_cover_exactly_passing_pairs(self, ad_pair):
        join = ChunkedJoin(ad_pair.clean, ad_pair.error, k=1)
        ii, jj = join._length_pairs()
        got = set(zip(ii.tolist(), jj.tolist()))
        want = {
            (i, j)
            for i in range(50)
            for j in range(50)
            if abs(len(ad_pair.clean[i]) - len(ad_pair.error[j])) <= 1
        }
        assert got == want

    def test_record_matches_on_filtered_method(self, ad_pair):
        join = ChunkedJoin(
            ad_pair.clean, ad_pair.error, k=1, record_matches=True
        )
        res = join.run("LFPDL")
        assert len(res.matches) == res.match_count
        assert all(
            abs(len(ad_pair.clean[i]) - len(ad_pair.error[j])) <= 1
            for i, j in res.matches
        )

    def test_k0_bucketing(self, ad_pair):
        join = ChunkedJoin(ad_pair.clean, ad_pair.error, k=0)
        res = join.run("LFPDL")
        # At k=0 only identical strings match; error injection means
        # nothing on the diagonal survives.
        matcher = build_matcher("LFPDL", k=0, scheme="alnum")
        ref = match_strings(ad_pair.clean, ad_pair.error, matcher)
        assert res.match_count == ref.match_count


class TestShareRight:
    def test_reuses_right_arrays_and_scheme(self):
        right = ["123456789", "555443333", "999887777"]
        base = VectorEngine([], right, k=1, scheme_kind="numeric")
        eng = VectorEngine(["123456780"], right, k=1, share_right=base)
        assert eng.sigs_r is base.sigs_r
        assert eng.codes_r is base.codes_r
        assert eng.scheme is base.scheme
        result = eng.run("FPDL")
        assert result.match_count == 1

    def test_share_right_matches_fresh_engine(self):
        right = ["smith", "smyth", "jones", "jonse"]
        queries = ["smith", "jnoes"]
        base = VectorEngine([], right, k=1, scheme_kind="alpha")
        shared = VectorEngine(queries, right, k=1, share_right=base)
        fresh = VectorEngine(queries, right, k=1, scheme_kind="alpha")
        for method in ("FPDL", "LFPDL", "DL"):
            assert (
                shared.run(method).match_count
                == fresh.run(method).match_count
            )

    def test_rejects_different_right_object(self):
        base = VectorEngine([], ["123"], k=1, scheme_kind="numeric")
        with pytest.raises(ValueError, match="share_right"):
            VectorEngine(["123"], ["123"], k=1, share_right=base)

    def test_scheme_instance_accepted(self):
        from repro.core.signatures import scheme_for

        scheme = scheme_for("alnum", 3)
        eng = VectorEngine(["a1"], ["a1"], k=1, scheme_kind=scheme)
        assert eng.scheme is scheme
        assert eng.run("FPDL").match_count == 1
