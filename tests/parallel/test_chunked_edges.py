"""Edge-case tests for ChunkedJoin (empty inputs, degenerate data)."""

import pytest

from repro.core.matchers import METHOD_NAMES
from repro.parallel.chunked import ChunkedJoin


class TestEmptyInputs:
    @pytest.mark.parametrize("method", ["DL", "FPDL", "LFPDL", "FBF", "SDX"])
    def test_both_empty(self, method):
        join = ChunkedJoin([], [], k=1, scheme_kind="alnum")
        res = join.run(method)
        assert res.match_count == 0
        assert res.pairs_compared == 0

    @pytest.mark.parametrize("method", ["DL", "FPDL", "LF", "Ham"])
    def test_one_side_empty(self, method):
        join = ChunkedJoin(["ABC"], [], k=1, scheme_kind="alpha")
        assert join.run(method).match_count == 0
        join = ChunkedJoin([], ["ABC"], k=1, scheme_kind="alpha")
        assert join.run(method).match_count == 0


class TestDegenerateData:
    def test_all_identical_strings(self):
        strings = ["SAME"] * 7
        join = ChunkedJoin(strings, strings, k=1, scheme_kind="alpha")
        res = join.run("FPDL")
        assert res.match_count == 49
        # Self-join diagonal counts value-identity matches: every pair
        # of identical strings, not just the positional i == j ones.
        assert res.diagonal_matches == 49

    def test_single_pair(self):
        join = ChunkedJoin(["A"], ["B"], k=1, scheme_kind="alpha")
        assert join.run("DL").match_count == 1  # one substitution

    def test_empty_strings_in_data(self):
        # Empty strings: DL treats them normally, PDL rejects them —
        # both engines must hold their own semantics.
        join = ChunkedJoin(["", "A"], ["", "A"], k=1, scheme_kind="alpha")
        dl = join.run("DL")
        pdl = join.run("PDL")
        # DL: ("","") d=0, ("","A") d=1, ("A","") d=1, ("A","A") d=0.
        assert dl.match_count == 4
        # PDL: empty operands always FALSE -> only ("A","A").
        assert pdl.match_count == 1

    def test_very_long_strings(self):
        long_a = "AB" * 100
        long_b = "AB" * 99 + "AC"
        join = ChunkedJoin([long_a], [long_b], k=2, scheme_kind="alpha")
        assert join.run("DL").match_count == 1
        assert join.run("FPDL").match_count == 1

    def test_every_method_on_minimal_input(self):
        join = ChunkedJoin(["A1"], ["A1"], k=1, theta=0.8, scheme_kind="alnum")
        for method in METHOD_NAMES:
            res = join.run(method)
            assert res.match_count >= 0  # no crashes, sane output
            assert res.n_left == res.n_right == 1
