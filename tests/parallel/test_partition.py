"""Unit tests for pair-space partitioning."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.parallel.partition import balanced_splits, iter_pair_blocks, row_blocks


class TestIterPairBlocks:
    def test_covers_product_exactly_once(self):
        seen = set()
        for ii, jj in iter_pair_blocks(7, 5, block=8):
            for i, j in zip(ii.tolist(), jj.tolist()):
                assert (i, j) not in seen
                seen.add((i, j))
        assert seen == {(i, j) for i in range(7) for j in range(5)}

    def test_block_size_respected(self):
        for ii, _ in iter_pair_blocks(100, 3, block=10):
            assert len(ii) <= 10

    def test_wide_right_side_splits_rows(self):
        blocks = list(iter_pair_blocks(2, 100, block=30))
        assert all(len(ii) <= 30 for ii, _ in blocks)
        total = sum(len(ii) for ii, _ in blocks)
        assert total == 200

    def test_empty_inputs(self):
        assert list(iter_pair_blocks(0, 5)) == []
        assert list(iter_pair_blocks(5, 0)) == []

    def test_invalid_block(self):
        with pytest.raises(ValueError):
            list(iter_pair_blocks(1, 1, block=0))

    def test_row_major_order(self):
        flat = []
        for ii, jj in iter_pair_blocks(3, 3, block=4):
            flat.extend(zip(ii.tolist(), jj.tolist()))
        assert flat == sorted(flat)

    @given(st.integers(1, 20), st.integers(1, 20), st.integers(1, 50))
    def test_coverage_property(self, nl, nr, block):
        total = sum(len(ii) for ii, _ in iter_pair_blocks(nl, nr, block))
        assert total == nl * nr

    def test_dtype(self):
        ii, jj = next(iter_pair_blocks(2, 2))
        assert ii.dtype == np.int64 and jj.dtype == np.int64


class TestBalancedSplits:
    def test_example(self):
        assert balanced_splits(10, 3) == [(0, 4), (4, 7), (7, 10)]

    def test_fewer_items_than_parts(self):
        splits = balanced_splits(2, 5)
        assert splits == [(0, 1), (1, 2)]

    def test_zero_items(self):
        assert balanced_splits(0, 4) == []

    def test_invalid(self):
        with pytest.raises(ValueError):
            balanced_splits(5, 0)
        with pytest.raises(ValueError):
            balanced_splits(-1, 2)

    @given(st.integers(0, 200), st.integers(1, 16))
    def test_partition_property(self, n, parts):
        splits = balanced_splits(n, parts)
        covered = [i for start, stop in splits for i in range(start, stop)]
        assert covered == list(range(n))
        if splits:
            sizes = [stop - start for start, stop in splits]
            assert max(sizes) - min(sizes) <= 1


class TestRowBlocks:
    def test_rough_pair_budget(self):
        blocks = row_blocks(1000, 1000, target_pairs=100_000)
        assert blocks[0] == (0, 100)
        assert blocks[-1][1] == 1000

    def test_at_least_one_row(self):
        blocks = row_blocks(10, 10**7, target_pairs=100)
        assert all(stop - start >= 1 for start, stop in blocks)

    def test_empty(self):
        assert row_blocks(0, 10) == []
