"""Equivalence tests: ChunkedJoin vs the scalar join, all 15 methods."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.join import match_strings
from repro.core.matchers import METHOD_NAMES, build_matcher
from repro.data.datasets import dataset_for_family
from repro.parallel.chunked import ChunkedJoin

small_pool = st.lists(
    st.text(alphabet="ABC123", min_size=1, max_size=8), min_size=1, max_size=7
)


@pytest.fixture(scope="module")
def ln_pair():
    return dataset_for_family("LN", 60, seed=5)


class TestChunkedJoinEquivalence:
    @pytest.mark.parametrize("method", METHOD_NAMES)
    def test_matches_scalar_on_names(self, ln_pair, method):
        join = ChunkedJoin(ln_pair.clean, ln_pair.error, k=1, theta=0.8,
                           scheme_kind="alpha")
        vec = join.run(method)
        matcher = build_matcher(method, k=1, theta=0.8, scheme="alpha")
        ref = match_strings(ln_pair.clean, ln_pair.error, matcher)
        assert (vec.match_count, vec.diagonal_matches) == (
            ref.match_count,
            ref.diagonal_matches,
        )

    @pytest.mark.parametrize("method", ["DL", "FPDL", "LFPDL", "Ham"])
    def test_k2(self, ln_pair, method):
        join = ChunkedJoin(ln_pair.clean, ln_pair.error, k=2, scheme_kind="alpha")
        vec = join.run(method)
        matcher = build_matcher(method, k=2, scheme="alpha")
        ref = match_strings(ln_pair.clean, ln_pair.error, matcher)
        assert (vec.match_count, vec.diagonal_matches) == (
            ref.match_count,
            ref.diagonal_matches,
        )

    @settings(max_examples=15)
    @given(small_pool, small_pool, st.integers(1, 2))
    def test_random_data_fpdl(self, left, right, k):
        join = ChunkedJoin(left, right, k=k, scheme_kind="alnum", chunk=16)
        vec = join.run("FPDL")
        matcher = build_matcher("FPDL", k=k, scheme="alnum")
        ref = match_strings(left, right, matcher)
        assert (vec.match_count, vec.diagonal_matches) == (
            ref.match_count,
            ref.diagonal_matches,
        )

    @settings(max_examples=15)
    @given(small_pool, small_pool)
    def test_random_data_all_full_product_methods(self, left, right):
        join = ChunkedJoin(left, right, k=1, theta=0.8, scheme_kind="alnum", chunk=8)
        for method in ("DL", "PDL", "Jaro", "Wink", "Ham", "SDX"):
            vec = join.run(method)
            matcher = build_matcher(method, k=1, theta=0.8, scheme="alnum")
            ref = match_strings(left, right, matcher)
            assert (vec.match_count, vec.diagonal_matches) == (
                ref.match_count,
                ref.diagonal_matches,
            ), method


class TestChunkedJoinBehaviour:
    def test_record_matches(self):
        join = ChunkedJoin(["AB", "XY"], ["AB", "AC"], k=1, record_matches=True)
        res = join.run("DL")
        assert set(res.matches) == {(0, 0), (0, 1)}

    def test_tiny_chunks_agree_with_big(self, ln_pair):
        small = ChunkedJoin(ln_pair.clean, ln_pair.error, k=1, chunk=7).run("FDL")
        big = ChunkedJoin(ln_pair.clean, ln_pair.error, k=1, chunk=1 << 18).run("FDL")
        assert small.match_count == big.match_count

    def test_unknown_method(self):
        join = ChunkedJoin(["A"], ["A"], k=1)
        with pytest.raises(ValueError):
            join.run("BOGUS")

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            ChunkedJoin(["A"], ["A"], k=-1)

    def test_verified_pairs_reported(self, ln_pair):
        res = ChunkedJoin(ln_pair.clean, ln_pair.error, k=1).run("FPDL")
        assert 0 < res.verified_pairs <= res.pairs_compared

    def test_filter_only_has_no_verified(self, ln_pair):
        res = ChunkedJoin(ln_pair.clean, ln_pair.error, k=1).run("FBF")
        assert res.verified_pairs == 0

    def test_scheme_autodetection(self):
        join = ChunkedJoin(["123456789"], ["123456780"], k=1)
        assert join.scheme.name == "numeric"
        assert join.run("FPDL").match_count == 1

    def test_fbf_pass_counts_monotone_in_k(self, ln_pair):
        r1 = ChunkedJoin(ln_pair.clean, ln_pair.error, k=1).run("FBF")
        r2 = ChunkedJoin(ln_pair.clean, ln_pair.error, k=2).run("FBF")
        assert r2.match_count >= r1.match_count

    def test_off_diagonal_property(self, ln_pair):
        res = ChunkedJoin(ln_pair.clean, ln_pair.error, k=1).run("LF")
        assert res.off_diagonal_matches == res.match_count - res.diagonal_matches
