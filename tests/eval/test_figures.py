"""Unit tests for the ASCII figure renderer."""

import pytest

from repro.eval.curves import CurveResult
from repro.eval.figures import ascii_chart, render_curve_figure


@pytest.fixture
def simple_series():
    return {
        "DL": [(100, 10.0), (200, 40.0), (300, 90.0)],
        "FPDL": [(100, 1.0), (200, 2.0), (300, 4.0)],
    }


class TestAsciiChart:
    def test_contains_glyphs_and_legend(self, simple_series):
        out = ascii_chart(simple_series)
        assert "*" in out and "o" in out
        assert "legend: *=DL  o=FPDL" in out

    def test_title_rendered(self, simple_series):
        out = ascii_chart(simple_series, title="Figure 7")
        assert out.splitlines()[0] == "Figure 7"

    def test_dimensions(self, simple_series):
        out = ascii_chart(simple_series, width=40, height=8)
        plot_lines = [l for l in out.splitlines() if "|" in l]
        assert len(plot_lines) == 8

    def test_log_scale_mentioned(self, simple_series):
        out = ascii_chart(simple_series, log_y=True)
        assert "log scale" in out

    def test_axis_labels(self, simple_series):
        out = ascii_chart(simple_series)
        assert "100" in out and "300" in out  # x range
        assert "90" in out  # y max

    def test_monotone_series_descends_on_grid(self):
        out = ascii_chart({"up": [(0, 0.0), (10, 100.0)]}, width=20, height=10)
        rows = [l.split("|")[1] for l in out.splitlines() if "|" in l]
        first_row_with_mark = next(i for i, r in enumerate(rows) if "*" in r)
        last_row_with_mark = max(i for i, r in enumerate(rows) if "*" in r)
        # Higher y -> earlier (upper) row.
        assert rows[first_row_with_mark].index("*") > rows[
            last_row_with_mark
        ].index("*")

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_chart({})
        with pytest.raises(ValueError):
            ascii_chart({"a": []})
        with pytest.raises(ValueError):
            ascii_chart({"a": [(0, 0)]}, width=2)

    def test_constant_series_no_crash(self):
        out = ascii_chart({"flat": [(0, 5.0), (10, 5.0)]})
        assert "*" in out

    def test_zero_values_with_log(self):
        out = ascii_chart({"a": [(0, 0.0), (1, 10.0)]}, log_y=True)
        assert "*" in out


class TestRenderCurveFigure:
    def test_from_curve_result(self):
        curve = CurveResult(
            family="LN",
            k=1,
            ns=[100, 200, 300],
            times_ms={"DL": [10.0, 40.0, 90.0], "FPDL": [1.0, 2.0, 3.0]},
        )
        out = render_curve_figure(curve, title="Figure 7 reproduction")
        assert "Figure 7 reproduction" in out
        assert "*=DL" in out and "o=FPDL" in out

    def test_method_subset(self):
        curve = CurveResult(
            family="LN",
            k=1,
            ns=[1, 2, 3],
            times_ms={"DL": [1.0, 2.0, 3.0], "FPDL": [1.0, 1.0, 1.0]},
        )
        out = render_curve_figure(curve, methods=["DL"])
        assert "FPDL" not in out
