"""Unit tests for the quadratic runtime-curve fits."""

import pytest

from repro.eval.curves import CurveResult
from repro.eval.polyfit import QuadraticFit, fit_curves, fit_quadratic


class TestFitQuadratic:
    def test_recovers_exact_quadratic(self):
        ns = [1, 2, 3, 4, 5]
        times = [2 * n * n + 3 * n + 7 for n in ns]
        fit = fit_quadratic(ns, times)
        assert fit.a == pytest.approx(2.0)
        assert fit.b == pytest.approx(3.0)
        assert fit.c == pytest.approx(7.0)

    def test_predict(self):
        fit = QuadraticFit(1.0, 0.0, 0.0)
        assert fit.predict(10) == 100.0

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            fit_quadratic([1, 2], [1.0, 2.0])

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            fit_quadratic([1, 2, 3], [1.0, 2.0])

    def test_asymptotic_speedup(self):
        # The paper's Section 6 projection: speedup for very large n is
        # the ratio of the quadratic coefficients (DL a=1.32e-3, FPDL
        # a=4.67e-5 -> about 28.3).
        dl = QuadraticFit(1.32e-3, -0.374, 512.7)
        fpdl = QuadraticFit(4.67e-5, -0.013, 28.0)
        assert fpdl.asymptotic_speedup_over(dl) == pytest.approx(28.3, rel=0.01)

    def test_asymptotic_speedup_zero_a(self):
        flat = QuadraticFit(0.0, 1.0, 0.0)
        assert flat.asymptotic_speedup_over(QuadraticFit(1.0, 0, 0)) == float("inf")


class TestFitCurves:
    def test_fits_every_method(self):
        curve = CurveResult(
            family="LN",
            k=1,
            ns=[100, 200, 300, 400],
            times_ms={
                "DL": [1.0 * n * n / 1000 for n in [100, 200, 300, 400]],
                "FPDL": [0.05 * n * n / 1000 + 2 for n in [100, 200, 300, 400]],
            },
        )
        fits = fit_curves(curve)
        assert set(fits) == {"DL", "FPDL"}
        # Growth coefficient ordering mirrors Table 9.
        assert fits["FPDL"].a < fits["DL"].a
        assert fits["FPDL"].asymptotic_speedup_over(fits["DL"]) == pytest.approx(
            20.0, rel=0.05
        )
