"""Unit tests for the threshold-sweep utilities."""

import numpy as np
import pytest

from repro.data.datasets import dataset_for_family
from repro.distance.jaro import jaro
from repro.eval.sweep import (
    SweepPoint,
    sweep_edit_threshold,
    sweep_similarity_threshold,
)


@pytest.fixture(scope="module")
def ln_pair():
    return dataset_for_family("LN", 80, seed=61)


class TestEditSweep:
    def test_monotone_in_k(self, ln_pair):
        points = sweep_edit_threshold(ln_pair, "FPDL", ks=(0, 1, 2))
        counts = [p.match_count for p in points]
        assert counts == sorted(counts)
        # k=0 misses every injected error; k>=1 recovers all.
        assert points[0].type2 == ln_pair.n
        assert points[1].type2 == 0
        assert points[2].type2 == 0

    def test_type1_grows_with_k(self, ln_pair):
        points = sweep_edit_threshold(ln_pair, "DL", ks=(1, 3))
        assert points[1].type1 >= points[0].type1

    def test_thresholds_recorded(self, ln_pair):
        points = sweep_edit_threshold(ln_pair, "FPDL", ks=(2,))
        assert points[0].threshold == 2.0


class TestSimilaritySweep:
    def test_matches_scalar_at_each_theta(self, ln_pair):
        thetas = (0.7, 0.85, 0.95)
        points = sweep_similarity_threshold(ln_pair, "Jaro", thetas)
        for theta, point in zip(thetas, points):
            expected = sum(
                1
                for a in ln_pair.clean
                for b in ln_pair.error
                if jaro(a, b) >= theta
            )
            assert point.match_count == expected, theta

    def test_monotone_in_theta(self, ln_pair):
        points = sweep_similarity_threshold(
            ln_pair, "Wink", tuple(t / 10 for t in range(5, 10))
        )
        counts = [p.match_count for p in points]
        assert counts == sorted(counts, reverse=True)

    def test_tight_theta_loses_recall(self, ln_pair):
        points = sweep_similarity_threshold(ln_pair, "Jaro", (0.999,))
        assert points[0].type2 > 0

    def test_invalid_method(self, ln_pair):
        with pytest.raises(ValueError):
            sweep_similarity_threshold(ln_pair, "Ham")

    def test_no_theta_dominates_dl(self, ln_pair):
        # The sweep-level statement of the paper's Tables 1-4 finding:
        # no Jaro threshold matches DL at k=1 on *both* error axes — at
        # every theta it either misses true matches (Type 2 > DL's) or
        # over-matches (Type 1 > DL's), usually by a lot.
        dl = sweep_edit_threshold(ln_pair, "DL", ks=(1,))[0]
        points = sweep_similarity_threshold(
            ln_pair, "Jaro", tuple(t / 20 for t in range(10, 20))
        )
        for p in points:
            assert p.type1 > dl.type1 or p.type2 > dl.type2, p


class TestSweepPoint:
    def test_recall_property(self):
        p = SweepPoint(threshold=1.0, type1=5, type2=2, match_count=13)
        # 8 true positives of 10 ground-truth matches.
        assert p.recall == pytest.approx(0.8)
