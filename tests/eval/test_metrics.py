"""Unit tests for confusion accounting."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.eval.metrics import Confusion


class TestConfusion:
    def test_paper_table1_dl_row_shape(self):
        # DL on SSN: 42 Type 1, 0 Type 2, 5000 diagonal matches out of
        # 25,000,000 pairs.
        c = Confusion(5000, 5000, match_count=5042, diagonal_matches=5000)
        assert c.type1 == 42
        assert c.type2 == 0
        assert c.true_negatives == 25_000_000 - 5000 - 42

    def test_type2(self):
        c = Confusion(10, 10, match_count=7, diagonal_matches=7)
        assert c.type2 == 3
        assert c.recall == 0.7

    def test_precision(self):
        c = Confusion(10, 10, match_count=10, diagonal_matches=5)
        assert c.precision == 0.5

    def test_f1_harmonic(self):
        c = Confusion(10, 10, match_count=10, diagonal_matches=5)
        p, r = c.precision, c.recall
        assert c.f1 == pytest.approx(2 * p * r / (p + r))

    def test_empty(self):
        c = Confusion(0, 0, 0, 0)
        assert c.precision == 0.0 and c.recall == 0.0 and c.f1 == 0.0

    def test_inconsistent_counts_rejected(self):
        with pytest.raises(ValueError):
            Confusion(5, 5, match_count=2, diagonal_matches=3)
        with pytest.raises(ValueError):
            Confusion(2, 2, match_count=9, diagonal_matches=3)
        with pytest.raises(ValueError):
            Confusion(-1, 2, match_count=0, diagonal_matches=0)

    @given(
        st.integers(1, 50),
        st.integers(0, 2000),
        st.integers(0, 50),
    )
    def test_quadrants_partition_pair_space(self, n, extra, diag):
        diag = min(diag, n)
        match_count = diag + min(extra, n * n - n)
        c = Confusion(n, n, match_count, diag)
        total = (
            c.true_positives + c.false_positives + c.false_negatives + c.true_negatives
        )
        assert total == n * n

    @given(st.integers(1, 40), st.integers(0, 40))
    def test_aliases(self, n, diag):
        diag = min(diag, n)
        c = Confusion(n, n, diag, diag)
        assert c.type1 == c.false_positives
        assert c.type2 == c.false_negatives
