"""Unit tests for experiment sizing."""

import pytest

from repro.eval import scale


@pytest.fixture
def no_flag(monkeypatch):
    monkeypatch.delenv("REPRO_PAPER_SCALE", raising=False)


@pytest.fixture
def flag_on(monkeypatch):
    monkeypatch.setenv("REPRO_PAPER_SCALE", "1")


class TestPaperScale:
    def test_off_by_default(self, no_flag):
        assert not scale.paper_scale()

    def test_on_values(self, monkeypatch):
        for value in ("1", "true", "yes", "on"):
            monkeypatch.setenv("REPRO_PAPER_SCALE", value)
            assert scale.paper_scale()

    def test_off_values(self, monkeypatch):
        for value in ("", "0", "no", "off"):
            monkeypatch.setenv("REPRO_PAPER_SCALE", value)
            assert not scale.paper_scale()


class TestScaled:
    def test_default(self, no_flag):
        assert scale.scaled(100, 5000) == 100

    def test_paper(self, flag_on):
        assert scale.scaled(100, 5000) == 5000


class TestCurveSizes:
    def test_default_sweep(self, no_flag):
        ns = scale.curve_sizes()
        assert len(ns) >= 3  # enough points for a quadratic fit
        assert ns == sorted(ns)
        assert ns[0] >= 100

    def test_paper_sweep(self, flag_on):
        ns = scale.curve_sizes()
        assert ns[0] == 1000 and ns[-1] == 18000
        assert len(ns) == 18
