"""Integration tests for the experiment runners (reduced scale).

These assert the *qualitative* findings each paper table reports — the
accuracy identities and orderings that must hold at any scale — rather
than wall-clock numbers.
"""

import pytest

from repro.eval.experiments import (
    DEFAULT_TABLE_METHODS,
    LENGTH_TABLE_METHODS,
    run_rl_experiment,
    run_soundex_experiment,
    run_string_experiment,
)


@pytest.fixture(scope="module")
def ssn_result():
    return run_string_experiment("SSN", 150, k=1, seed=0)


@pytest.fixture(scope="module")
def ln_result():
    return run_string_experiment(
        "LN", 150, k=1, methods=LENGTH_TABLE_METHODS, seed=0
    )


class TestStringExperiment:
    def test_all_rows_present(self, ssn_result):
        assert [r.method for r in ssn_result.rows] == list(DEFAULT_TABLE_METHODS)

    def test_dl_stacks_identical_accuracy(self, ssn_result):
        # Table 1's key accuracy claim: DL, PDL, FDL, FPDL agree exactly.
        dl = ssn_result.row("DL")
        for m in ("PDL", "FDL", "FPDL"):
            row = ssn_result.row(m)
            assert (row.type1, row.type2) == (dl.type1, dl.type2), m

    def test_no_type2_for_safe_methods(self, ssn_result):
        # Zero false negatives everywhere except Hamming.
        for r in ssn_result.rows:
            if r.method != "Ham":
                assert r.type2 == 0, r.method

    def test_ham_has_type2(self, ssn_result):
        assert ssn_result.row("Ham").type2 > 0

    def test_jaro_wink_inflate_type1(self, ssn_result):
        dl = ssn_result.row("DL")
        assert ssn_result.row("Jaro").type1 > dl.type1
        assert ssn_result.row("Wink").type1 >= ssn_result.row("Jaro").type1

    def test_fbf_filter_only_superset(self, ssn_result):
        assert ssn_result.row("FBF").type1 >= ssn_result.row("FDL").type1
        assert ssn_result.row("FBF").type2 == 0

    def test_speedups_relative_to_dl(self, ssn_result):
        assert ssn_result.row("DL").speedup == pytest.approx(1.0)
        assert ssn_result.row("FPDL").speedup > 1.0

    def test_gen_time_recorded(self, ssn_result):
        assert ssn_result.gen_time_ms > 0
        assert ssn_result.gen_speedup > 1.0

    def test_theta_defaults(self):
        r = run_string_experiment("FN", 30, seed=1, methods=("DL",))
        assert r.theta == 0.75
        r = run_string_experiment("LN", 30, seed=1, methods=("DL",))
        assert r.theta == 0.8

    def test_unknown_engine(self):
        with pytest.raises(ValueError):
            run_string_experiment("SSN", 10, engine="gpu")

    def test_scalar_engine_agrees_on_accuracy(self):
        vec = run_string_experiment("SSN", 60, seed=3, methods=("DL", "FPDL"))
        sca = run_string_experiment(
            "SSN", 60, seed=3, methods=("DL", "FPDL"), engine="scalar"
        )
        for m in ("DL", "FPDL"):
            assert vec.row(m).type1 == sca.row(m).type1
            assert vec.row(m).type2 == sca.row(m).type2

    def test_row_lookup_missing(self, ssn_result):
        with pytest.raises(KeyError):
            ssn_result.row("NOPE")


class TestLengthFilterExperiment:
    def test_length_stacks_identical_accuracy(self, ln_result):
        dl = ln_result.row("DL")
        for m in ("FPDL", "LDL", "LPDL", "LFDL", "LFPDL"):
            row = ln_result.row(m)
            assert (row.type1, row.type2) == (dl.type1, dl.type2), m

    def test_lf_coarse_but_passes_many_pairs(self, ln_result):
        # The length filter is coarse: with Table 13's length histogram
        # about 45% of random name pairs are within one length unit
        # (the paper's Table 12 reports an even higher pass rate), so
        # LF alone is far looser than FBF.
        lf = ln_result.row("LF")
        assert lf.match_count > 0.3 * 150 * 150
        fbf_passes = ln_result.row("LFBF").match_count
        assert lf.match_count > 10 * fbf_passes

    def test_lfbf_tighter_than_fbf_alone(self):
        res = run_string_experiment(
            "LN", 150, k=1, seed=0, methods=("FBF", "LFBF")
        )
        assert res.row("LFBF").match_count <= res.row("FBF").match_count


class TestSoundexExperiment:
    def test_error_mode_findings(self):
        rows = run_soundex_experiment("FN", 150, mode="error", seed=2)
        dl, sdx = rows
        assert dl.label == "FN-DL" and sdx.label == "FN-SDX"
        # The paper's Table 7 story.
        assert dl.fn == 0
        assert sdx.fn > 0
        assert sdx.tp < dl.tp
        assert sdx.fp > dl.fp

    def test_clean_mode_findings(self):
        rows = run_soundex_experiment("LN", 150, mode="clean", seed=2)
        dl, sdx = rows
        # Table 8: both find all true positives on clean data; Soundex
        # still produces far more false positives.
        assert dl.tp == 150 and sdx.tp == 150
        assert sdx.fp > dl.fp

    def test_quadrants_sum(self):
        for row in run_soundex_experiment("FN", 80, seed=3):
            assert row.tp + row.fn + row.fp + row.tn == 80 * 80

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            run_soundex_experiment("FN", 10, mode="dirty")

    def test_invalid_family(self):
        with pytest.raises(ValueError):
            run_soundex_experiment("SSN", 10)


class TestRLExperiment:
    def test_table6_shape(self):
        res = run_rl_experiment(60, seed=4)
        methods = [r.method for r in res.rows]
        assert methods == ["DL", "PDL", "FDL", "FPDL", "FBF"]
        dl = res.row("DL")
        assert dl.speedup == pytest.approx(1.0)
        # Identical decisions for all DL-wrapped stacks.
        for m in ("PDL", "FDL", "FPDL"):
            assert res.row(m).type1 == dl.type1
            assert res.row(m).type2 == dl.type2
        # FBF-filtered stacks beat bare DL.
        assert res.row("FPDL").speedup > res.row("PDL").speedup > 1.0
        assert res.gen_time_ms > 0

    def test_perfect_recall(self):
        res = run_rl_experiment(40, seed=5)
        assert res.row("DL").type2 == 0
        assert res.row("FPDL").type2 == 0
