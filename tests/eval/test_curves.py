"""Tests for the runtime-curve runner and its derived views."""

import pytest

from repro.eval.curves import (
    FIG7_METHODS,
    FIG9_METHODS,
    per_pair_times,
    run_runtime_curve,
    speedup_by_n,
)


@pytest.fixture(scope="module")
def curve():
    return run_runtime_curve(
        "LN", ns=(60, 120, 180), methods=("DL", "PDL", "FDL", "FPDL"), seed=0
    )


class TestRunRuntimeCurve:
    def test_shape(self, curve):
        assert curve.ns == [60, 120, 180]
        for m in ("DL", "PDL", "FDL", "FPDL"):
            assert len(curve.times_ms[m]) == 3
            assert all(t > 0 for t in curve.times_ms[m])

    def test_series_accessor(self, curve):
        series = curve.series("DL")
        assert [n for n, _ in series] == [60, 120, 180]

    def test_dl_grows_fastest(self, curve):
        # Figure 7's headline: DL has the greatest growth, FBF methods
        # the smallest.
        dl_growth = curve.times_ms["DL"][-1] / curve.times_ms["DL"][0]
        assert curve.times_ms["DL"][-1] == max(
            curve.times_ms[m][-1] for m in curve.times_ms
        )
        assert dl_growth > 1.0

    def test_fbf_methods_fastest_at_largest_n(self, curve):
        at_max = {m: t[-1] for m, t in curve.times_ms.items()}
        assert at_max["FPDL"] < at_max["PDL"] < at_max["DL"]
        assert at_max["FDL"] < at_max["DL"]

    def test_method_sets(self):
        assert "FBF" in FIG7_METHODS and "DL" in FIG7_METHODS
        assert set(FIG9_METHODS) == {"LDL", "LPDL", "LF", "LFDL", "LFPDL", "LFBF"}

    def test_invalid_datasets_per_n(self):
        with pytest.raises(ValueError):
            run_runtime_curve("LN", ns=(10,), datasets_per_n=0)


class TestSpeedupByN:
    def test_fpdl_over_dl(self, curve):
        table = speedup_by_n(curve, "FPDL", "DL")
        assert [n for n, _ in table] == [60, 120, 180]
        assert all(s > 1.0 for _, s in table)

    def test_missing_method(self, curve):
        with pytest.raises(KeyError):
            speedup_by_n(curve, "LFPDL", "DL")


class TestPerPairTimes:
    def test_units_and_shape(self, curve):
        pp = per_pair_times(curve, ["DL", "FDL"])
        assert set(pp) == {"DL", "FDL"}
        pairs, ns_per_pair = pp["DL"][0]
        assert pairs == 60 * 60
        # ms * 1e6 / pairs: per-pair time in nanoseconds.
        assert ns_per_pair == pytest.approx(
            curve.times_ms["DL"][0] * 1e6 / 3600
        )

    def test_fbf_per_pair_below_dl(self, curve):
        pp = per_pair_times(curve)
        assert pp["FDL"][-1][1] < pp["DL"][-1][1]

    def test_defaults_to_all_methods(self, curve):
        assert set(per_pair_times(curve)) == set(curve.times_ms)
