"""Unit tests for the timing protocols."""

import pytest

from repro.eval.timing import TimingProtocol, time_callable


class TestTimingProtocol:
    def test_paper_protocols(self):
        assert TimingProtocol.PAPER_TABLES.runs == 5
        assert not TimingProtocol.PAPER_TABLES.drop_extremes
        assert TimingProtocol.PAPER_CURVES.runs == 5
        assert TimingProtocol.PAPER_CURVES.drop_extremes
        assert TimingProtocol.QUICK.runs == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            TimingProtocol(runs=0)
        with pytest.raises(ValueError):
            TimingProtocol(runs=2, drop_extremes=True)


class TestTimeCallable:
    def test_runs_counted(self):
        calls = []
        timing, value = time_callable(
            lambda: calls.append(1) or len(calls), TimingProtocol(runs=4)
        )
        assert len(calls) == 4
        assert len(timing.times_ms) == 4
        assert value == 4  # last run's return value

    def test_mean_over_all_runs_without_trim(self):
        timing, _ = time_callable(lambda: None, TimingProtocol(runs=3))
        assert timing.mean_ms == pytest.approx(
            sum(timing.times_ms) / 3, rel=1e-9
        )

    def test_trimmed_mean_drops_extremes(self):
        timing, _ = time_callable(
            lambda: None, TimingProtocol(runs=5, drop_extremes=True)
        )
        trimmed = sorted(timing.times_ms)[1:-1]
        assert timing.mean_ms == pytest.approx(sum(trimmed) / 3, rel=1e-9)

    def test_best_ms(self):
        timing, _ = time_callable(lambda: None, TimingProtocol(runs=3))
        assert timing.best_ms == min(timing.times_ms)

    def test_times_positive(self):
        timing, _ = time_callable(lambda: sum(range(1000)))
        assert all(t >= 0 for t in timing.times_ms)
