"""Unit tests for the reproduction-report builder."""

from pathlib import Path

from repro.eval.report import RESULT_ORDER, build_report, main


class TestBuildReport:
    def test_includes_present_results(self, tmp_path):
        (tmp_path / "table01_ssn_k1.txt").write_text("SSN table body")
        report = build_report(tmp_path)
        assert "Table 1" in report
        assert "SSN table body" in report

    def test_lists_missing_as_pending(self, tmp_path):
        report = build_report(tmp_path)
        assert "Pending" in report
        assert "Table 1" in report  # listed as pending

    def test_ablations_appended(self, tmp_path):
        (tmp_path / "ablation_popcount.txt").write_text("kernels...")
        report = build_report(tmp_path)
        assert "Ablations" in report and "kernels..." in report

    def test_order_matches_paper(self):
        assert RESULT_ORDER[0] == "table01_ssn_k1"
        assert RESULT_ORDER.index("table05_fpdl_speedup") < RESULT_ORDER.index(
            "table06_record_linkage"
        )
        assert RESULT_ORDER[-1] == "tableA3_birthdates"

    def test_real_results_dir_if_available(self):
        results = Path(__file__).resolve().parents[2] / "benchmarks" / "results"
        if not results.exists():
            return
        report = build_report(results)
        assert "Reproduction report" in report
        assert "```" in report

    def test_main_writes_file(self, tmp_path, capsys):
        (tmp_path / "table01_ssn_k1.txt").write_text("body")
        out = tmp_path / "report.md"
        assert main([str(tmp_path), str(out)]) == 0
        assert "body" in out.read_text()

    def test_main_prints_without_output_path(self, tmp_path, capsys):
        main([str(tmp_path)])
        assert "Reproduction report" in capsys.readouterr().out
