"""Unit tests for paper-style table rendering."""

from repro.eval.experiments import (
    MethodRow,
    RLExperimentResult,
    SoundexRow,
    StringExperimentResult,
)
from repro.eval.tables import (
    format_rl_experiment,
    format_soundex_rows,
    format_string_experiment,
    format_table,
)


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["name", "n"], [["a", 1], ["bb", 22]])
        lines = out.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert len({len(line) for line in lines}) == 1  # rectangular

    def test_title(self):
        out = format_table(["x"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_number_formatting(self):
        out = format_table(["v"], [[1234567], [3.14159], [None]])
        assert "1,234,567" in out
        assert "3.14" in out
        assert "-" in out


def _string_result() -> StringExperimentResult:
    res = StringExperimentResult(
        family="SSN", n=100, k=1, theta=0.8, engine="vectorized", seed=0
    )
    res.rows = [
        MethodRow("DL", 42, 0, 100.0, speedup=1.0),
        MethodRow("FPDL", 42, 0, 2.0, speedup=50.0),
    ]
    res.gen_time_ms = 0.5
    return res


class TestFormatters:
    def test_string_experiment(self):
        out = format_string_experiment(_string_result())
        assert "SSN" in out and "FPDL" in out and "Gen" in out
        assert "Speedup" in out
        assert "50.00" in out

    def test_soundex_rows(self):
        rows = [SoundexRow("FN-DL", 100, 0, 5, 9895, 12.0)]
        out = format_soundex_rows(rows, "Table 7")
        assert "Table 7" in out and "FN-DL" in out and "9,895" in out

    def test_rl_experiment(self):
        res = RLExperimentResult(n=100)
        res.rows = [MethodRow("DL", 0, 0, 500.0, speedup=1.0)]
        res.gen_time_ms = 1.5
        out = format_rl_experiment(res)
        assert "RL experiment" in out and "Gen" in out

    def test_baseline_lookup(self):
        res = _string_result()
        assert res.baseline_time_ms == 100.0
        assert res.gen_speedup == 200.0
