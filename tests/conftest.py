"""Shared fixtures and hypothesis configuration for the test suite."""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, settings

# One profile for CI-ish determinism: no deadline (the DP metrics are
# slow on pathological draws), a moderate example budget.  The
# "thorough" profile is the soak-test setting:
#   pytest tests/ -p no:cacheprovider --hypothesis-profile=thorough
settings.register_profile(
    "repro",
    deadline=None,
    max_examples=60,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "thorough",
    deadline=None,
    max_examples=300,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture
def rng() -> random.Random:
    """A fresh deterministic RNG per test."""
    return random.Random(0xF5F)


@pytest.fixture
def rng_factory():
    """Factory for seeded RNGs when a test needs several streams."""

    def make(seed: int) -> random.Random:
        return random.Random(seed)

    return make
