"""Unit tests for the q-gram profile distance extension."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.distance.levenshtein import levenshtein
from repro.distance.qgram import qgram_distance, qgram_filter, qgram_profile

text = st.text(alphabet="ABC", max_size=8)


class TestQgramProfile:
    def test_unpadded_bigrams(self):
        assert sorted(qgram_profile("ABCA", 2, padded=False)) == ["AB", "BC", "CA"]

    def test_padded_adds_edges(self):
        prof = qgram_profile("AB", 2)
        assert sum(prof.values()) == 3  # _A, AB, B_

    def test_multiset_counts(self):
        prof = qgram_profile("AAA", 2, padded=False)
        assert prof["AA"] == 2

    def test_empty_string(self):
        assert sum(qgram_profile("", 2, padded=False).values()) == 0

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            qgram_profile("AB", 0)

    def test_unigrams(self):
        prof = qgram_profile("ABA", 1, padded=False)
        assert prof["A"] == 2 and prof["B"] == 1


class TestQgramDistance:
    def test_identical(self):
        assert qgram_distance("12345", "12345") == 0

    def test_disjoint(self):
        assert qgram_distance("AAAA", "BBBB") > 0

    def test_symmetry_example(self):
        assert qgram_distance("ABCD", "ABXD") == qgram_distance("ABXD", "ABCD")

    @given(text, text)
    def test_symmetry(self, s, t):
        assert qgram_distance(s, t) == qgram_distance(t, s)

    @given(text, text, st.integers(1, 3))
    def test_lower_bounds_edit_distance(self, s, t, q):
        # One edit touches at most q q-grams on each side.
        assert qgram_distance(s, t, q) <= 2 * q * levenshtein(s, t)


class TestQgramFilter:
    @given(text, text, st.integers(0, 3))
    def test_filter_is_safe(self, s, t, k):
        # Never rejects a true match: the same zero-false-negative
        # contract as FBF.
        if levenshtein(s, t) <= k:
            assert qgram_filter(k)(s, t)

    def test_filter_rejects_distant(self):
        assert qgram_filter(1)("AAAAAAAA", "BBBBBBBB") is False
