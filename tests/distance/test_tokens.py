"""Unit tests for token/set similarity measures."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.distance.tokens import (
    cosine_qgrams,
    dice,
    jaccard,
    overlap_coefficient,
    qgram_set,
    token_matcher,
    word_tokens,
)

text = st.text(alphabet="ABC 1", max_size=10)


class TestTokenizers:
    def test_word_tokens(self):
        assert word_tokens("123 Main St") == {"123", "main", "st"}

    def test_word_tokens_empty(self):
        assert word_tokens("   ") == frozenset()

    def test_qgram_set_padded(self):
        grams = qgram_set("AB", 2)
        assert len(grams) == 3  # _a, ab, b_

    def test_qgram_set_dedupes(self):
        assert len(qgram_set("AAAA", 2)) == 3  # _a, aa, a_

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            qgram_set("A", 0)


class TestCoefficients:
    def test_identical(self):
        for fn in (jaccard, dice, overlap_coefficient):
            assert fn("SMITH", "SMITH") == 1.0
        assert cosine_qgrams("SMITH", "SMITH") == pytest.approx(1.0)

    def test_disjoint(self):
        for fn in (jaccard, dice, overlap_coefficient):
            assert fn("AAA", "BBB") == 0.0
        assert cosine_qgrams("AAA", "BBB") == 0.0

    def test_both_empty(self):
        assert jaccard("", "") == 1.0
        assert cosine_qgrams("", "", 1) == 1.0

    def test_one_empty(self):
        assert jaccard("", "AB") == 0.0

    def test_word_mode(self):
        assert jaccard("MAIN ST", "MAIN AVE", q=None) == pytest.approx(1 / 3)

    def test_ordering_dice_above_jaccard(self):
        # Dice >= Jaccard always (2i/(a+b) >= i/(a+b-i) for i <= min).
        s, t = "SMITH", "SMYTHE"
        assert dice(s, t) >= jaccard(s, t)

    def test_overlap_at_least_jaccard(self):
        s, t = "SMITH", "SMYTHE"
        assert overlap_coefficient(s, t) >= jaccard(s, t)

    @given(text, text)
    def test_ranges(self, s, t):
        for fn in (jaccard, dice, overlap_coefficient):
            assert 0.0 <= fn(s, t) <= 1.0
        assert 0.0 <= cosine_qgrams(s, t) <= 1.0 + 1e-12

    @given(text, text)
    def test_symmetry(self, s, t):
        assert jaccard(s, t) == jaccard(t, s)
        assert dice(s, t) == dice(t, s)
        assert cosine_qgrams(s, t) == pytest.approx(cosine_qgrams(t, s))

    @given(text)
    def test_self_similarity(self, s):
        assert jaccard(s, s) == 1.0


class TestTokenMatcher:
    def test_threshold(self):
        m = token_matcher(0.5)
        assert m("SMITH", "SMITH")
        assert not m("SMITH", "JONES")

    def test_custom_similarity(self):
        m = token_matcher(0.9, dice)
        assert "dice" in m.__name__

    def test_invalid_theta(self):
        with pytest.raises(ValueError):
            token_matcher(1.5)

    def test_tokens_coarse_on_short_strings(self):
        # The paper's reason for exclusion, in miniature: a one-char
        # substitution in a 5-char name wipes out 2-3 of ~6 q-grams, so
        # any threshold loose enough to accept true twins also accepts
        # strings sharing a few grams by chance.
        true_twin = jaccard("SMITH", "SMYTH")  # one substitution
        rotated = jaccard("SMITH", "MITHS")  # edit distance 2, same grams
        assert true_twin <= 0.5  # the twin scores poorly...
        assert rotated >= 0.3  # ...while distant strings score non-trivially
