"""Equivalence tests: vectorized pair-batch metrics vs scalar reference.

These are the fidelity contract of the NumPy engines: every function in
:mod:`repro.distance.vectorized` must agree with its scalar twin *exactly*
(boolean/integer results) or to float tolerance (Jaro family), on both
hypothesis-generated batches and targeted edge cases.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distance.codec import encode_raw
from repro.distance.damerau import damerau_levenshtein
from repro.distance.hamming import hamming
from repro.distance.jaro import jaro, jaro_winkler
from repro.distance.levenshtein import levenshtein
from repro.distance.pruned import pdl
from repro.distance.vectorized import (
    hamming_pairs,
    jaro_pairs,
    jaro_winkler_pairs,
    levenshtein_pairs,
    osa_pairs,
    osa_within_k_pairs,
)

batch = st.lists(st.text(alphabet="ABC1", max_size=7), min_size=1, max_size=8)


def _full_product(a, b):
    ca, la = encode_raw(a)
    cb, lb = encode_raw(b)
    ii, jj = np.meshgrid(np.arange(len(a)), np.arange(len(b)), indexing="ij")
    return ca, la, cb, lb, ii.ravel(), jj.ravel()


class TestOSAPairs:
    @given(batch, batch)
    def test_matches_scalar(self, a, b):
        ca, la, cb, lb, ii, jj = _full_product(a, b)
        got = osa_pairs(ca, la, cb, lb, ii, jj)
        expected = [damerau_levenshtein(a[i], b[j]) for i, j in zip(ii, jj)]
        assert got.tolist() == expected

    def test_empty_strings(self):
        ca, la, cb, lb, ii, jj = _full_product(["", "AB"], ["", "A"])
        got = osa_pairs(ca, la, cb, lb, ii, jj)
        assert got.tolist() == [0, 1, 2, 1]

    def test_transpositions(self):
        ca, la, cb, lb, ii, jj = _full_product(["SMITH"], ["SMIHT"])
        assert osa_pairs(ca, la, cb, lb, ii, jj).tolist() == [1]

    def test_subset_of_pairs(self):
        a, b = ["AB", "CD", "EF"], ["AB", "XY"]
        ca, la = encode_raw(a)
        cb, lb = encode_raw(b)
        ii = np.array([0, 2])
        jj = np.array([0, 1])
        got = osa_pairs(ca, la, cb, lb, ii, jj)
        assert got.tolist() == [0, 2]


class TestLevenshteinPairs:
    @given(batch, batch)
    def test_matches_scalar(self, a, b):
        ca, la, cb, lb, ii, jj = _full_product(a, b)
        got = levenshtein_pairs(ca, la, cb, lb, ii, jj)
        expected = [levenshtein(a[i], b[j]) for i, j in zip(ii, jj)]
        assert got.tolist() == expected

    def test_no_transposition_credit(self):
        ca, la, cb, lb, ii, jj = _full_product(["AB"], ["BA"])
        assert levenshtein_pairs(ca, la, cb, lb, ii, jj).tolist() == [2]


class TestOSAWithinK:
    @given(batch, batch, st.integers(0, 3))
    def test_matches_pdl(self, a, b, k):
        ca, la, cb, lb, ii, jj = _full_product(a, b)
        got = osa_within_k_pairs(ca, la, cb, lb, ii, jj, k)
        expected = [pdl(a[i], b[j], k) for i, j in zip(ii, jj)]
        assert got.tolist() == expected

    def test_rejects_empty_like_paper(self):
        ca, la, cb, lb, ii, jj = _full_product([""], [""])
        assert osa_within_k_pairs(ca, la, cb, lb, ii, jj, 2).tolist() == [False]

    def test_k_zero_is_equality(self):
        a = ["ABC", "ABD", ""]
        ca, la, cb, lb, ii, jj = _full_product(a, ["ABC"])
        got = osa_within_k_pairs(ca, la, cb, lb, ii, jj, 0)
        assert got.tolist() == [True, False, False]

    def test_negative_k(self):
        ca, la, cb, lb, ii, jj = _full_product(["A"], ["A"])
        with pytest.raises(ValueError):
            osa_within_k_pairs(ca, la, cb, lb, ii, jj, -1)

    @settings(max_examples=20)
    @given(st.integers(1, 3))
    def test_band_wider_than_strings(self, k):
        # k larger than both strings: band covers everything.
        ca, la, cb, lb, ii, jj = _full_product(["A"], ["B"])
        assert osa_within_k_pairs(ca, la, cb, lb, ii, jj, k).tolist() == [True]


class TestHammingPairs:
    @given(batch, batch)
    def test_matches_scalar(self, a, b):
        ca, la, cb, lb, ii, jj = _full_product(a, b)
        got = hamming_pairs(ca, la, cb, lb, ii, jj)
        expected = [hamming(a[i], b[j]) for i, j in zip(ii, jj)]
        assert got.tolist() == expected

    def test_overhang_beyond_shared_width(self):
        # Right dataset is much narrower than the left strings.
        a, b = ["ABCDEFGH"], ["AB"]
        ca, la, cb, lb, ii, jj = _full_product(a, b)
        assert hamming_pairs(ca, la, cb, lb, ii, jj).tolist() == [6]


class TestJaroPairs:
    @given(batch, batch)
    def test_matches_scalar(self, a, b):
        ca, la, cb, lb, ii, jj = _full_product(a, b)
        got = jaro_pairs(ca, la, cb, lb, ii, jj)
        expected = [jaro(a[i], b[j]) for i, j in zip(ii, jj)]
        np.testing.assert_allclose(got, expected, atol=1e-12)

    @given(batch, batch)
    def test_standard_variant_matches_scalar(self, a, b):
        ca, la, cb, lb, ii, jj = _full_product(a, b)
        got = jaro_pairs(ca, la, cb, lb, ii, jj, variant="standard")
        expected = [jaro(a[i], b[j], variant="standard") for i, j in zip(ii, jj)]
        np.testing.assert_allclose(got, expected, atol=1e-12)

    def test_paper_example(self):
        ca, la, cb, lb, ii, jj = _full_product(["SMITH"], ["SMIHT"])
        got = jaro_pairs(ca, la, cb, lb, ii, jj)
        assert got[0] == pytest.approx(jaro("SMITH", "SMIHT"))

    def test_empty_pairs(self):
        ca, la, cb, lb, ii, jj = _full_product(["", "A"], ["", "A"])
        got = jaro_pairs(ca, la, cb, lb, ii, jj)
        expected = [jaro("", ""), jaro("", "A"), jaro("A", ""), jaro("A", "A")]
        np.testing.assert_allclose(got, expected)


class TestJaroWinklerPairs:
    @given(batch, batch)
    def test_matches_scalar(self, a, b):
        ca, la, cb, lb, ii, jj = _full_product(a, b)
        got = jaro_winkler_pairs(ca, la, cb, lb, ii, jj)
        expected = [jaro_winkler(a[i], b[j]) for i, j in zip(ii, jj)]
        np.testing.assert_allclose(got, expected, atol=1e-12)

    def test_prefix_cap(self):
        ca, la, cb, lb, ii, jj = _full_product(["ABCDEF"], ["ABCDEX"])
        got = jaro_winkler_pairs(ca, la, cb, lb, ii, jj)
        assert got[0] == pytest.approx(jaro_winkler("ABCDEF", "ABCDEX"))
