"""Unit tests for Hamming distance and its threshold matcher."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.distance.damerau import damerau_levenshtein
from repro.distance.hamming import hamming, hamming_matcher

text5 = st.text(alphabet="ABC", max_size=8)


class TestHamming:
    def test_classic(self):
        assert hamming("karolin", "kathrin") == 3

    def test_equal(self):
        assert hamming("555", "555") == 0

    def test_all_different(self):
        assert hamming("AAA", "BBB") == 3

    def test_overhang_counts(self):
        assert hamming("12345", "1234") == 1
        assert hamming("1234", "123499") == 2

    def test_empty_vs_nonempty(self):
        assert hamming("", "XYZ") == 3

    def test_both_empty(self):
        assert hamming("", "") == 0

    def test_shift_blindness(self):
        # The paper's reason Hamming has Type 2 errors: a single
        # insertion shifts every later character.
        assert damerau_levenshtein("JOHNSON", "JOHNSSON") == 1
        assert hamming("JOHNSON", "JOHNSSON") > 1

    @given(text5, text5)
    def test_symmetry(self, s, t):
        assert hamming(s, t) == hamming(t, s)

    @given(text5, text5)
    def test_upper_bounds_edit_distance(self, s, t):
        # Hamming is an upper bound on Levenshtein (hence OSA):
        # substituting every mismatched position is a valid edit script.
        assert damerau_levenshtein(s, t) <= hamming(s, t)

    @given(text5, text5)
    def test_range(self, s, t):
        d = hamming(s, t)
        assert abs(len(s) - len(t)) <= d <= max(len(s), len(t))


class TestHammingMatcher:
    def test_threshold(self):
        m = hamming_matcher(1)
        assert m("12345", "12346") is True
        assert m("12345", "12366") is False

    def test_length_shortcut(self):
        m = hamming_matcher(1)
        assert m("123", "123456") is False

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            hamming_matcher(-1)

    @given(text5, text5, st.integers(0, 5))
    def test_matcher_equals_metric(self, s, t, k):
        assert hamming_matcher(k)(s, t) == (hamming(s, t) <= k)
