"""Property tests for the bit-parallel OSA implementation.

The transposition term was *derived*, not copied, so these tests are the
proof: exact agreement with the Algorithm 1 DP on adversarial input
classes (small alphabets maximize transposition interactions).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distance.bitparallel import (
    MAX_PATTERN,
    osa_bitparallel,
    osa_bitparallel_batch,
    osa_bitparallel_bounded,
)
from repro.distance.codec import encode_raw
from repro.distance.damerau import damerau_levenshtein

binary = st.text(alphabet="AB", max_size=14)
ternary = st.text(alphabet="ABC", max_size=10)
wide = st.text(alphabet="ABCDEFGH", max_size=12)


class TestScalar:
    def test_paper_examples(self):
        assert osa_bitparallel("Saturday", "Sunday") == 3
        assert osa_bitparallel("SMITH", "SMIHT") == 1
        assert osa_bitparallel("CA", "ABC") == 3  # the OSA restriction

    def test_empties(self):
        assert osa_bitparallel("", "ABC") == 3
        assert osa_bitparallel("ABC", "") == 3
        assert osa_bitparallel("", "") == 0

    def test_long_pattern_fallback(self):
        s = "A" * 70
        t = "A" * 69 + "BA"
        assert osa_bitparallel(s, t) == damerau_levenshtein(s, t)

    def test_word_boundary(self):
        s = "AB" * (MAX_PATTERN // 2)
        swapped = s[:-2] + s[-1] + s[-2]
        assert osa_bitparallel(s, swapped) == 1

    @given(binary, binary)
    def test_matches_dp_binary(self, s, t):
        assert osa_bitparallel(s, t) == damerau_levenshtein(s, t)

    @given(ternary, ternary)
    def test_matches_dp_ternary(self, s, t):
        assert osa_bitparallel(s, t) == damerau_levenshtein(s, t)

    @given(wide, wide)
    def test_matches_dp_wide(self, s, t):
        assert osa_bitparallel(s, t) == damerau_levenshtein(s, t)

    @given(binary.filter(lambda s: len(s) >= 2))
    def test_adjacent_swap_is_one(self, s):
        if s[0] != s[1]:
            t = s[1] + s[0] + s[2:]
            assert osa_bitparallel(s, t) == 1


class TestBounded:
    def test_within(self):
        assert osa_bitparallel_bounded("SMITH", "SMIHT", 1) == 1

    def test_beyond(self):
        assert osa_bitparallel_bounded("SMITH", "JONES", 2) is None

    def test_length_prune(self):
        assert osa_bitparallel_bounded("A", "ABCDEF", 2) is None

    def test_negative_k(self):
        with pytest.raises(ValueError):
            osa_bitparallel_bounded("A", "A", -1)

    @given(ternary, ternary, st.integers(0, 4))
    def test_agrees_with_metric(self, s, t, k):
        d = damerau_levenshtein(s, t)
        assert osa_bitparallel_bounded(s, t, k) == (d if d <= k else None)


class TestBatch:
    @settings(max_examples=40)
    @given(st.lists(ternary, min_size=1, max_size=10), ternary.filter(bool))
    def test_matches_scalar(self, targets, query):
        codes, lengths = encode_raw(targets)
        got = osa_bitparallel_batch(query, codes, lengths)
        assert got.tolist() == [damerau_levenshtein(query, t) for t in targets]

    def test_empty_batch(self):
        codes, lengths = encode_raw([])
        assert osa_bitparallel_batch("AB", codes, lengths).shape == (0,)

    def test_empty_pattern(self):
        codes, lengths = encode_raw(["AB", "A"])
        assert osa_bitparallel_batch("", codes, lengths).tolist() == [2, 1]

    def test_empty_targets(self):
        codes, lengths = encode_raw(["", "AB"])
        got = osa_bitparallel_batch("XY", codes, lengths)
        assert got.tolist() == [2, 2]

    def test_pattern_too_long(self):
        codes, lengths = encode_raw(["AB"])
        with pytest.raises(ValueError):
            osa_bitparallel_batch("A" * 65, codes, lengths)

    def test_mixed_length_freeze(self):
        targets = ["AB", "ABDC", "ABCD"]
        codes, lengths = encode_raw(targets)
        got = osa_bitparallel_batch("ABCD", codes, lengths)
        assert got.tolist() == [2, 1, 0]

    def test_dtype(self):
        codes, lengths = encode_raw(["AB"])
        assert osa_bitparallel_batch("AB", codes, lengths).dtype == np.int64
