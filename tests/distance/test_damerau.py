"""Unit tests for restricted (OSA) and unrestricted Damerau-Levenshtein."""

from hypothesis import given
from hypothesis import strategies as st

from repro.distance.damerau import damerau_levenshtein, true_damerau_levenshtein
from repro.distance.levenshtein import levenshtein

short_text = st.text(alphabet="ABCD", max_size=9)


class TestDamerauLevenshtein:
    def test_paper_figure1(self):
        # Figure 1's matrix bottoms out at 3 for Saturday/Sunday.
        assert damerau_levenshtein("Saturday", "Sunday") == 3

    def test_paper_figure1_substring(self):
        # "the distance between 'Sat' and 'Sun' is 2".
        assert damerau_levenshtein("Sat", "Sun") == 2

    def test_transposition_is_one_edit(self):
        assert damerau_levenshtein("SMITH", "SMIHT") == 1

    def test_transposition_beats_levenshtein(self):
        assert levenshtein("SMITH", "SMIHT") == 2
        assert damerau_levenshtein("SMITH", "SMIHT") == 1

    def test_empty_left(self):
        assert damerau_levenshtein("", "ABCD") == 4

    def test_empty_right(self):
        assert damerau_levenshtein("ABCD", "") == 4

    def test_both_empty(self):
        assert damerau_levenshtein("", "") == 0

    def test_identity(self):
        assert damerau_levenshtein("JOHNSON", "JOHNSON") == 0

    def test_osa_restriction(self):
        # The classic case where OSA (the paper's DL) differs from the
        # true metric: edited substrings cannot be edited again.
        assert damerau_levenshtein("CA", "ABC") == 3

    def test_two_transpositions(self):
        assert damerau_levenshtein("ABCD", "BADC") == 2

    def test_non_adjacent_swap_not_one(self):
        # Only adjacent transposition counts as one edit.
        assert damerau_levenshtein("ABC", "CBA") == 2

    def test_paper_proof_examples(self):
        # Section 4's worked strings.
        assert damerau_levenshtein("13245", "12345") == 1  # transposition
        assert damerau_levenshtein("123456", "12345") == 1  # delete
        assert damerau_levenshtein("1234", "12345") == 1  # insert
        assert damerau_levenshtein("12346", "12345") == 1  # substitution

    @given(short_text, short_text)
    def test_symmetry(self, s, t):
        assert damerau_levenshtein(s, t) == damerau_levenshtein(t, s)

    @given(short_text, short_text)
    def test_never_exceeds_levenshtein(self, s, t):
        assert damerau_levenshtein(s, t) <= levenshtein(s, t)

    @given(short_text, short_text)
    def test_at_most_one_below_levenshtein_per_transposition(self, s, t):
        # Each transposition saves exactly one edit vs Levenshtein, so
        # OSA is at least half of Levenshtein.
        assert damerau_levenshtein(s, t) >= levenshtein(s, t) / 2

    @given(short_text, short_text)
    def test_bounds(self, s, t):
        d = damerau_levenshtein(s, t)
        assert abs(len(s) - len(t)) <= d <= max(len(s), len(t))

    @given(short_text)
    def test_adjacent_swap_costs_one(self, s):
        if len(s) >= 2 and s[0] != s[1]:
            t = s[1] + s[0] + s[2:]
            assert damerau_levenshtein(s, t) == 1


class TestTrueDamerauLevenshtein:
    def test_ca_abc(self):
        assert true_damerau_levenshtein("CA", "ABC") == 2

    def test_identity(self):
        assert true_damerau_levenshtein("XYZ", "XYZ") == 0

    def test_empties(self):
        assert true_damerau_levenshtein("", "AB") == 2
        assert true_damerau_levenshtein("AB", "") == 2
        assert true_damerau_levenshtein("", "") == 0

    def test_simple_transposition(self):
        assert true_damerau_levenshtein("AB", "BA") == 1

    @given(short_text, short_text)
    def test_never_exceeds_osa(self, s, t):
        # The unrestricted metric can only find cheaper edit scripts.
        assert true_damerau_levenshtein(s, t) <= damerau_levenshtein(s, t)

    @given(short_text, short_text)
    def test_symmetry(self, s, t):
        assert true_damerau_levenshtein(s, t) == true_damerau_levenshtein(t, s)

    @given(short_text, short_text, short_text)
    def test_triangle_inequality(self, a, b, c):
        # Unlike OSA, the unrestricted metric satisfies the triangle
        # inequality.
        d = true_damerau_levenshtein
        assert d(a, c) <= d(a, b) + d(b, c)

    def test_osa_triangle_violation_example(self):
        # Documented OSA counterexample: d(CA,AC)=1, d(AC,ABC)=1 but
        # d(CA,ABC)=3 > 1 + 1.
        d = damerau_levenshtein
        assert d("CA", "AC") + d("AC", "ABC") < d("CA", "ABC")
