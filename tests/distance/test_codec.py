"""Unit tests for the string codecs backing the vectorized engines."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.distance.codec import (
    ALPHA_CODEC,
    ASCII_CODEC,
    DIGIT_CODEC,
    Codec,
    encode_raw,
)

latin_text = st.text(
    alphabet=st.characters(min_codepoint=1, max_codepoint=255), max_size=12
)


class TestCodec:
    def test_pad_is_zero(self):
        codes, lengths = ALPHA_CODEC.encode_padded(["AB", "ABCD"])
        assert codes.shape == (2, 4)
        assert codes[0, 2] == 0 and codes[0, 3] == 0
        assert lengths.tolist() == [2, 4]

    def test_casefold(self):
        a = ALPHA_CODEC.encode("smith")
        b = ALPHA_CODEC.encode("SMITH")
        assert (a == b).all()

    def test_digit_codec_no_casefold(self):
        codes = DIGIT_CODEC.encode("0129")
        assert codes.tolist() == [1, 2, 3, 10]

    def test_other_code_distinct_from_pad(self):
        codes = DIGIT_CODEC.encode("1-2")
        assert codes[1] == DIGIT_CODEC.size - 1
        assert codes[1] != 0

    def test_empty_batch(self):
        codes, lengths = ASCII_CODEC.encode_padded([])
        assert codes.shape[0] == 0 and lengths.shape[0] == 0

    def test_empty_string_in_batch(self):
        codes, lengths = ASCII_CODEC.encode_padded(["", "AB"])
        assert lengths.tolist() == [0, 2]
        assert (codes[0] == 0).all()

    def test_explicit_width_truncates(self):
        codes, lengths = ASCII_CODEC.encode_padded(["ABCDEF"], width=3)
        assert codes.shape == (1, 3)
        # lengths keep the true length even when codes are truncated
        assert lengths[0] == 6

    def test_size(self):
        assert DIGIT_CODEC.size == 12  # 10 digits + PAD + other

    def test_custom_codec(self):
        c = Codec("tiny", "XY", casefold=False)
        assert c.encode("XYZ").tolist() == [1, 2, 3]  # Z -> other


class TestEncodeRaw:
    def test_roundtrip_codes(self):
        codes, lengths = encode_raw(["AB", "c"])
        assert codes[0, :2].tolist() == [ord("A"), ord("B")]
        assert codes[1, 0] == ord("c")
        assert lengths.tolist() == [2, 1]

    def test_distinct_chars_stay_distinct(self):
        codes, _ = encode_raw(["aA"])
        assert codes[0, 0] != codes[0, 1]

    def test_nul_rejected(self):
        with pytest.raises(ValueError):
            encode_raw(["A\x00B"])

    def test_non_latin1_rejected(self):
        with pytest.raises(ValueError):
            encode_raw(["ABC☃"])

    def test_empty_batch(self):
        codes, lengths = encode_raw([])
        assert codes.shape[0] == 0

    @given(st.lists(latin_text.filter(lambda s: "\x00" not in s), max_size=6))
    def test_lengths_always_true_lengths(self, strings):
        _, lengths = encode_raw(strings)
        assert lengths.tolist() == [len(s) for s in strings]

    @given(latin_text.filter(lambda s: "\x00" not in s))
    def test_padding_never_collides(self, s):
        codes, lengths = encode_raw([s])
        n = int(lengths[0])
        assert (codes[0, :n] != 0).all()
        assert (codes[0, n:] == 0).all()

    def test_dtype(self):
        codes, lengths = encode_raw(["AB"])
        assert codes.dtype == np.uint8
        assert lengths.dtype == np.int64
