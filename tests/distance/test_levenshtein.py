"""Unit tests for plain Levenshtein distance."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.distance.levenshtein import bounded_levenshtein, levenshtein

short_text = st.text(alphabet="ABCDE", max_size=10)


class TestLevenshtein:
    def test_paper_example(self):
        assert levenshtein("Saturday", "Sunday") == 3

    def test_identity(self):
        assert levenshtein("KITTEN", "KITTEN") == 0

    def test_empty_left(self):
        assert levenshtein("", "ABC") == 3

    def test_empty_right(self):
        assert levenshtein("ABC", "") == 3

    def test_both_empty(self):
        assert levenshtein("", "") == 0

    def test_single_substitution(self):
        assert levenshtein("CAT", "CUT") == 1

    def test_single_insertion(self):
        assert levenshtein("CAT", "CART") == 1

    def test_single_deletion(self):
        assert levenshtein("CART", "CAT") == 1

    def test_transposition_costs_two(self):
        # Plain Levenshtein sees an adjacent swap as two edits.
        assert levenshtein("AB", "BA") == 2

    def test_completely_different(self):
        assert levenshtein("AAA", "BBB") == 3

    def test_kitten_sitting(self):
        assert levenshtein("kitten", "sitting") == 3

    def test_case_sensitive(self):
        assert levenshtein("abc", "ABC") == 3

    @given(short_text, short_text)
    def test_symmetry(self, s, t):
        assert levenshtein(s, t) == levenshtein(t, s)

    @given(short_text, short_text)
    def test_bounds(self, s, t):
        d = levenshtein(s, t)
        assert abs(len(s) - len(t)) <= d <= max(len(s), len(t))

    @given(short_text, short_text, short_text)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)

    @given(short_text)
    def test_identity_of_indiscernibles(self, s):
        assert levenshtein(s, s) == 0

    @given(short_text, st.integers(0, 4), st.text(alphabet="ABCDE", min_size=1, max_size=1))
    def test_single_insert_distance_one(self, s, pos, ch):
        pos = min(pos, len(s))
        t = s[:pos] + ch + s[pos:]
        assert levenshtein(s, t) <= 1


class TestBoundedLevenshtein:
    def test_within_bound_returns_distance(self):
        assert bounded_levenshtein("CAT", "CUT", 2) == 1

    def test_beyond_bound_returns_none(self):
        assert bounded_levenshtein("Saturday", "Sunday", 2) is None

    def test_exactly_at_bound(self):
        assert bounded_levenshtein("Saturday", "Sunday", 3) == 3

    def test_length_prune(self):
        assert bounded_levenshtein("A", "ABCDEFG", 2) is None

    def test_k_zero_equal(self):
        assert bounded_levenshtein("SAME", "SAME", 0) == 0

    def test_k_zero_unequal(self):
        assert bounded_levenshtein("SAME", "SOME", 0) is None

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            bounded_levenshtein("A", "B", -1)

    def test_non_integer_threshold_rejected(self):
        with pytest.raises(ValueError):
            bounded_levenshtein("A", "B", 1.5)

    @given(short_text, short_text, st.integers(0, 6))
    def test_agrees_with_full_dp(self, s, t, k):
        full = levenshtein(s, t)
        banded = bounded_levenshtein(s, t, k)
        if full <= k:
            assert banded == full
        else:
            assert banded is None
