"""Unit tests for Jaro and Jaro-Winkler similarity."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.distance.jaro import jaro, jaro_matcher, jaro_winkler, jaro_winkler_matcher

names = st.text(alphabet="ABCDEFG", max_size=10)


class TestJaro:
    def test_paper_example(self):
        # Section 2.3: jaro(SMITH, SMIHT) = 0.967 under the paper's
        # halved transposition penalty.
        assert jaro("SMITH", "SMIHT") == pytest.approx(0.967, abs=5e-4)

    def test_standard_variant(self):
        assert jaro("SMITH", "SMIHT", variant="standard") == pytest.approx(
            0.9333, abs=5e-4
        )
        assert jaro("MARTHA", "MARHTA", variant="standard") == pytest.approx(
            0.9444, abs=5e-4
        )

    def test_paper_no_match_example(self):
        # "The Jaro score for SMITH and JONES would be 0.0".
        assert jaro("SMITH", "JONES") == 0.0

    def test_identical(self):
        assert jaro("GARCIA", "GARCIA") == 1.0

    def test_both_empty(self):
        assert jaro("", "") == 1.0

    def test_one_empty(self):
        assert jaro("", "ABC") == 0.0
        assert jaro("ABC", "") == 0.0

    def test_unknown_variant(self):
        with pytest.raises(ValueError):
            jaro("A", "B", variant="bogus")

    def test_window_excludes_distant_matches(self):
        # Shared characters more than the window apart do not match.
        assert jaro("A" + "X" * 8, "Y" * 8 + "A") == 0.0

    @given(names, names)
    def test_range(self, s, t):
        assert 0.0 <= jaro(s, t) <= 1.0

    @given(names, names)
    def test_symmetry(self, s, t):
        assert jaro(s, t) == pytest.approx(jaro(t, s))

    @given(names)
    def test_self_similarity(self, s):
        assert jaro(s, s) == 1.0

    @given(names, names)
    def test_paper_variant_never_below_standard(self, s, t):
        assert jaro(s, t) >= jaro(s, t, variant="standard") - 1e-12


class TestJaroWinkler:
    def test_paper_example(self):
        # Section 2.4: wink(SMITH, SMIHT) = 0.977.
        assert jaro_winkler("SMITH", "SMIHT") == pytest.approx(0.977, abs=5e-4)

    def test_prefix_boost(self):
        # Same Jaro score; the shared prefix lifts Winkler.
        base = jaro("MARTHA", "MARHTA")
        assert jaro_winkler("MARTHA", "MARHTA") > base

    def test_no_shared_prefix_equals_jaro(self):
        assert jaro_winkler("ABCD", "XBCD") == pytest.approx(jaro("ABCD", "XBCD"))

    def test_prefix_capped_at_four(self):
        # Identical 5-char prefix must not score above an identical
        # 4-char prefix contribution: p*l with l clamped to 4.
        s, t = "ABCDEF", "ABCDEX"
        base = jaro(s, t)
        assert jaro_winkler(s, t) == pytest.approx(base + 4 * 0.1 * (1 - base))

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            jaro_winkler("A", "A", prefix_scale=0.5)

    @given(names, names)
    def test_range(self, s, t):
        assert 0.0 <= jaro_winkler(s, t) <= 1.0

    @given(names, names)
    def test_winkler_never_below_jaro(self, s, t):
        assert jaro_winkler(s, t) >= jaro(s, t) - 1e-12


class TestMatchers:
    def test_jaro_matcher(self):
        m = jaro_matcher(0.9)
        assert m("SMITH", "SMIHT") is True
        assert m("SMITH", "JONES") is False

    def test_wink_matcher(self):
        m = jaro_winkler_matcher(0.97)
        assert m("SMITH", "SMIHT") is True

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            jaro_matcher(1.5)
        with pytest.raises(ValueError):
            jaro_winkler_matcher(-0.1)

    @given(names, names, st.floats(0.0, 1.0))
    def test_matcher_consistency(self, s, t, theta):
        assert jaro_matcher(theta)(s, t) == (jaro(s, t) >= theta)
