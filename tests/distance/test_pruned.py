"""Unit and property tests for PDL (Algorithm 2) and bounded OSA."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.distance.damerau import damerau_levenshtein
from repro.distance.pruned import bounded_osa, pdl, pdl_matcher

short_text = st.text(alphabet="ABC1", max_size=9)
nonempty = st.text(alphabet="ABC1", min_size=1, max_size=9)


class TestPDL:
    def test_paper_figure2_threshold(self):
        # Figure 2 runs Saturday/Sunday with k=2: the true distance is 3.
        assert pdl("Saturday", "Sunday", 2) is False
        assert pdl("Saturday", "Sunday", 3) is True

    def test_length_prune_shortcut(self):
        # "For k=1, PDL would terminate immediately because
        #  abs(|s|-|t|) > k" (Saturday=8, Sunday=6).
        assert pdl("Saturday", "Sunday", 1) is False

    def test_empty_strings_rejected(self):
        # Paper Algorithm 2 Step 1: empty operands return FALSE, even
        # when both are empty.
        assert pdl("", "", 1) is False
        assert pdl("", "A", 1) is False
        assert pdl("A", "", 1) is False

    def test_empty_matches_flag(self):
        assert pdl("", "", 1, empty_matches=True) is True
        assert pdl("", "A", 1, empty_matches=True) is True
        assert pdl("", "AB", 1, empty_matches=True) is False

    def test_transposition_within_one(self):
        assert pdl("SMITH", "SMIHT", 1) is True

    def test_identical(self):
        assert pdl("JONES", "JONES", 0) is True

    def test_k_zero_differs(self):
        assert pdl("JONES", "JONAS", 0) is False

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            pdl("A", "B", -1)

    def test_bool_k_rejected(self):
        with pytest.raises(ValueError):
            pdl("A", "B", True)

    @given(nonempty, nonempty, st.integers(0, 5))
    def test_equals_osa_threshold(self, s, t, k):
        # The load-bearing equivalence: PDL(s,t,k) <=> OSA(s,t) <= k.
        assert pdl(s, t, k) == (damerau_levenshtein(s, t) <= k)

    @given(short_text, short_text, st.integers(0, 5))
    def test_empty_matches_mode_equals_osa(self, s, t, k):
        assert pdl(s, t, k, empty_matches=True) == (
            damerau_levenshtein(s, t) <= k
        )

    @given(nonempty, st.integers(1, 4))
    def test_monotone_in_k(self, s, k):
        t = s[::-1]
        if pdl(s, t, k):
            assert pdl(s, t, k + 1)


class TestBoundedOSA:
    def test_returns_exact_distance(self):
        assert bounded_osa("Saturday", "Sunday", 3) == 3

    def test_none_beyond_bound(self):
        assert bounded_osa("Saturday", "Sunday", 2) is None

    def test_zero_for_equal(self):
        assert bounded_osa("ABC", "ABC", 0) == 0

    def test_empty_handling_is_mathematical(self):
        # Unlike pdl(), bounded_osa keeps DL's empty-string semantics.
        assert bounded_osa("", "AB", 2) == 2
        assert bounded_osa("", "AB", 1) is None
        assert bounded_osa("", "", 0) == 0

    @given(short_text, short_text, st.integers(0, 5))
    def test_agrees_with_full_dp(self, s, t, k):
        full = damerau_levenshtein(s, t)
        banded = bounded_osa(s, t, k)
        if full <= k:
            assert banded == full
        else:
            assert banded is None


class TestPDLMatcher:
    def test_binds_threshold(self):
        m = pdl_matcher(1)
        assert m("SMITH", "SMIHT") is True
        assert m("SMITH", "JONES") is False

    def test_name_carries_threshold(self):
        assert pdl_matcher(2).__name__ == "pdl_k2"

    def test_invalid_threshold_fails_at_build(self):
        with pytest.raises(ValueError):
            pdl_matcher(-3)
