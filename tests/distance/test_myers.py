"""Unit and property tests for Myers bit-parallel Levenshtein."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.distance.codec import encode_raw
from repro.distance.levenshtein import levenshtein
from repro.distance.myers import MAX_PATTERN, myers_batch, myers_bounded, myers_distance

text = st.text(alphabet="ABCD1", max_size=12)


class TestMyersDistance:
    def test_classic(self):
        assert myers_distance("Saturday", "Sunday") == 3
        assert myers_distance("kitten", "sitting") == 3

    def test_identity(self):
        assert myers_distance("GARCIA", "GARCIA") == 0

    def test_empties(self):
        assert myers_distance("", "ABC") == 3
        assert myers_distance("ABC", "") == 3
        assert myers_distance("", "") == 0

    def test_transposition_costs_two(self):
        # Levenshtein semantics, not OSA.
        assert myers_distance("AB", "BA") == 2

    def test_long_pattern_fallback(self):
        s = "A" * 80
        t = "A" * 79 + "B"
        assert myers_distance(s, t) == levenshtein(s, t) == 1

    def test_word_boundary_pattern(self):
        s = "A" * MAX_PATTERN
        assert myers_distance(s, s) == 0
        assert myers_distance(s, s[:-1]) == 1

    @given(text, text)
    def test_matches_levenshtein(self, s, t):
        assert myers_distance(s, t) == levenshtein(s, t)

    @given(text, text)
    def test_symmetry(self, s, t):
        assert myers_distance(s, t) == myers_distance(t, s)


class TestMyersBounded:
    def test_within(self):
        assert myers_bounded("CAT", "CUT", 1) == 1

    def test_beyond(self):
        assert myers_bounded("CAT", "DOG", 1) is None

    def test_length_prune(self):
        assert myers_bounded("A", "ABCDEF", 2) is None

    def test_negative_k(self):
        with pytest.raises(ValueError):
            myers_bounded("A", "A", -1)

    @given(text, text, st.integers(0, 4))
    def test_agrees_with_metric(self, s, t, k):
        d = levenshtein(s, t)
        got = myers_bounded(s, t, k)
        assert got == (d if d <= k else None)


class TestMyersBatch:
    @given(st.lists(text, min_size=1, max_size=12), text.filter(bool))
    def test_matches_scalar(self, targets, query):
        codes, lengths = encode_raw(targets)
        got = myers_batch(query, codes, lengths)
        assert got.tolist() == [levenshtein(query, t) for t in targets]

    def test_empty_targets_array(self):
        codes, lengths = encode_raw([])
        assert myers_batch("ABC", codes, lengths).shape == (0,)

    def test_empty_target_strings(self):
        codes, lengths = encode_raw(["", "X"])
        got = myers_batch("AB", codes, lengths)
        assert got.tolist() == [2, 2]

    def test_empty_pattern(self):
        codes, lengths = encode_raw(["AB", "ABC"])
        got = myers_batch("", codes, lengths)
        assert got.tolist() == [2, 3]

    def test_pattern_too_long(self):
        codes, lengths = encode_raw(["AB"])
        with pytest.raises(ValueError):
            myers_batch("A" * 65, codes, lengths)

    def test_mixed_lengths_freeze_correctly(self):
        targets = ["A", "AB", "ABC", "ABCD"]
        codes, lengths = encode_raw(targets)
        got = myers_batch("ABC", codes, lengths)
        assert got.tolist() == [2, 1, 0, 1]

    def test_dtype(self):
        codes, lengths = encode_raw(["AB"])
        assert myers_batch("AB", codes, lengths).dtype == np.int64
