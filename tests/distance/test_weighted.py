"""Unit and property tests for weighted OSA edit distance."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.distance.damerau import damerau_levenshtein
from repro.distance.weighted import (
    keyboard_cost,
    keypad_cost,
    ocr_cost,
    weighted_osa,
)

text = st.text(alphabet="ABCDE12", max_size=9)


class TestDefaultsReduceToOSA:
    @given(text, text)
    def test_unit_costs_equal_osa(self, s, t):
        assert weighted_osa(s, t) == damerau_levenshtein(s, t)

    def test_empties(self):
        assert weighted_osa("", "ABC") == 3.0
        assert weighted_osa("ABC", "") == 3.0
        assert weighted_osa("", "") == 0.0


class TestCostModels:
    def test_adjacent_key_cheaper(self):
        cost = keyboard_cost(0.5)
        # S and A are QWERTY neighbours; S and P are not.
        near = weighted_osa("SMITH", "AMITH", substitution_cost=cost)
        far = weighted_osa("SMITH", "PMITH", substitution_cost=cost)
        assert near == 0.5
        assert far == 1.0

    def test_keypad_digits(self):
        cost = keypad_cost(0.25)
        assert weighted_osa("555", "556", substitution_cost=cost) == 0.25
        assert weighted_osa("555", "551", substitution_cost=cost) == 1.0

    def test_ocr_lookalikes(self):
        cost = ocr_cost(0.3)
        assert weighted_osa("B0B", "BOB", substitution_cost=cost) == pytest.approx(0.3)

    def test_invalid_confusable_cost(self):
        with pytest.raises(ValueError):
            keyboard_cost(0.0)
        with pytest.raises(ValueError):
            keyboard_cost(1.5)

    def test_custom_indel_and_transposition(self):
        assert weighted_osa("AB", "BA", transposition_cost=0.4) == pytest.approx(0.4)
        assert weighted_osa("AB", "ABC", indel_cost=2.0) == 2.0

    def test_invalid_operation_costs(self):
        with pytest.raises(ValueError):
            weighted_osa("A", "B", indel_cost=0.0)
        with pytest.raises(ValueError):
            weighted_osa("A", "B", transposition_cost=-1.0)

    def test_negative_substitution_cost_rejected(self):
        with pytest.raises(ValueError):
            weighted_osa("A", "B", substitution_cost=lambda a, b: -1.0)


class TestFilterSafetyPreserved:
    @given(text, text, st.floats(0.1, 1.0))
    def test_weighted_never_exceeds_unit_osa(self, s, t, c):
        # Costs in (0, 1] can only lower the distance, so any filter
        # that is safe for unit OSA at threshold k remains safe for the
        # weighted metric at the same threshold.
        w = weighted_osa(s, t, substitution_cost=keyboard_cost(c))
        assert w <= damerau_levenshtein(s, t) + 1e-9

    @given(text, text)
    def test_symmetry_with_symmetric_costs(self, s, t):
        # The stock tables are symmetric, so the metric is too.
        cost = keyboard_cost(0.5)
        assert weighted_osa(s, t, substitution_cost=cost) == pytest.approx(
            weighted_osa(t, s, substitution_cost=cost)
        )

    @given(text)
    def test_identity(self, s):
        assert weighted_osa(s, s, substitution_cost=ocr_cost()) == 0.0

    @given(text, text, st.floats(0.25, 1.0), st.floats(0.5, 2.0))
    def test_fbf_prefilter_sizing_is_safe(self, s, t, min_c, threshold):
        # The WeightedComparator contract: a pair within weighted
        # threshold T spans at most ceil(T / min_cost) unit edits, so
        # the FBF filter at that k never rejects it.
        import math

        from repro.core.signatures import alpha_signature, diff_bits

        cost = keyboard_cost(min_c)
        w = weighted_osa(s, t, substitution_cost=cost)
        if w <= threshold:
            k = math.ceil(threshold / min_c)
            bits = diff_bits(alpha_signature(s, 2), alpha_signature(t, 2))
            assert bits <= 2 * k, (s, t, w, k, bits)
