"""Unit tests for the American Soundex code."""

from hypothesis import given
from hypothesis import strategies as st

from repro.distance.soundex import soundex, soundex_matcher

names = st.text(alphabet="ABCDEFGHIJKLMNOPQRSTUVWXYZ", min_size=1, max_size=12)


class TestSoundex:
    def test_knuth_classics(self):
        assert soundex("Robert") == "R163"
        assert soundex("Rupert") == "R163"
        assert soundex("Ashcraft") == "A261"
        assert soundex("Ashcroft") == "A261"
        assert soundex("Tymczak") == "T522"
        assert soundex("Pfister") == "P236"

    def test_washington(self):
        assert soundex("Washington") == "W252"

    def test_short_name_zero_padded(self):
        assert soundex("Lee") == "L000"

    def test_gutierrez(self):
        assert soundex("Gutierrez") == "G362"

    def test_jackson(self):
        assert soundex("Jackson") == "J250"

    def test_vowel_breaks_run(self):
        # The two C-codes in "CACA"-like patterns are kept because a
        # vowel separates them.
        assert soundex("Tymczak") == "T522"  # z and c merge, a separates k

    def test_hw_transparent(self):
        # H between two same-coded consonants does not split them.
        assert soundex("Ashcraft") == soundex("Ashcroft")

    def test_case_insensitive(self):
        assert soundex("SMITH") == soundex("smith")

    def test_nonalpha_ignored(self):
        assert soundex("O'Brien") == soundex("OBrien")

    def test_empty_and_nonalpha(self):
        assert soundex("") == ""
        assert soundex("12345") == ""

    def test_leading_double_letter(self):
        # The first letter's code suppresses an immediately following
        # same-coded letter (classic "Pfister" -> P236 not P123 rule).
        assert soundex("Lloyd") == "L300"

    @given(names)
    def test_shape(self, name):
        code = soundex(name)
        assert len(code) == 4
        assert code[0].isalpha() and code[0].isupper()
        assert all(c in "0123456" for c in code[1:])

    @given(names)
    def test_deterministic(self, name):
        assert soundex(name) == soundex(name)

    @given(names)
    def test_self_match(self, name):
        assert soundex_matcher()(name, name)


class TestSoundexMatcher:
    def test_homophones_match(self):
        m = soundex_matcher()
        assert m("Robert", "Rupert") is True

    def test_different_names(self):
        m = soundex_matcher()
        assert m("Smith", "Jones") is False

    def test_empty_never_matches(self):
        m = soundex_matcher()
        assert m("", "") is False
        assert m("", "Smith") is False

    def test_single_edit_breaks_code(self):
        # The paper's Table 7 story: a leading-letter typo defeats
        # Soundex entirely.
        m = soundex_matcher()
        assert m("SMITH", "AMITH") is False
