"""The scalar PDL verifier's bit-parallel fast path.

Unobserved matchers (no collector) verify edit-bounded pairs through
``osa_bitparallel_bounded`` for word-sized patterns instead of the
banded DP.  These tests pin the decision equality against the paper's
Algorithm 2 (`pdl`) — including the >64-char DP fallback, empty-string
semantics, and transposition-heavy inputs — and that observed matchers
still take the DP so the pruning tallies keep flowing.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.matchers import build_matcher
from repro.distance.bitparallel import MAX_PATTERN
from repro.distance.pruned import pdl
from repro.obs.stats import StatsCollector

binary = st.text(alphabet="AB", max_size=12)
long_binary = st.text(alphabet="AB", min_size=MAX_PATTERN - 2, max_size=MAX_PATTERN + 8)
ks = st.integers(min_value=0, max_value=3)


class TestFastPathEquality:
    @given(binary, binary, ks)
    @settings(max_examples=300)
    def test_matches_algorithm_2(self, s, t, k):
        verify = build_matcher("PDL", k=k).verifier
        assert verify(s, t) == pdl(s, t, k)

    @given(long_binary, long_binary, ks)
    @settings(max_examples=60)
    def test_dp_fallback_beyond_word_limit(self, s, t, k):
        verify = build_matcher("PDL", k=k).verifier
        assert verify(s, t) == pdl(s, t, k)

    @given(st.text(alphabet="AB", max_size=8), ks)
    def test_empty_side_never_matches(self, t, k):
        verify = build_matcher("PDL", k=k).verifier
        assert verify("", t) is False
        assert verify(t, "") is False

    def test_transpositions_count_once(self):
        verify = build_matcher("PDL", k=1).verifier
        assert verify("SMITH", "SMIHT")
        assert not build_matcher("PDL", k=0).verifier("SMITH", "SMIHT")


class TestPathSelection:
    def test_unobserved_matcher_uses_bitparallel(self):
        verify = build_matcher("FPDL", k=2).verifier
        assert verify.__name__ == "pdl_bitparallel_k2"

    def test_observed_matcher_keeps_banded_dp(self):
        collector = StatsCollector("test")
        verify = build_matcher("PDL", k=1, collector=collector).verifier
        assert verify.__name__ == "pdl_k1"
        assert not verify("ABCD", "DCBA")
        assert collector.verifier_counters["length_pruned"] == 0
