# Convenience targets for the FBF reproduction.

PYTHON ?= python

.PHONY: install test bench bench-quick bench-json bench-paper report examples clean

install:
	$(PYTHON) -m pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# CI smoke: the multiplicity ablation at reduced scale, timings off.
bench-quick:
	$(PYTHON) -m pytest benchmarks/test_ablation_collapse.py -q --benchmark-disable

# Machine-readable artifacts: BENCH_hybrid.json (backend trajectory;
# the committed artifact was produced with REPRO_HYBRID_N=10000),
# BENCH_metrics.json (serve-telemetry overhead), BENCH_passjoin.json
# (candidate-generator trajectory; committed with
# REPRO_PASSJOIN_N=100000) and BENCH_outofcore.json (streamed join;
# committed with REPRO_OUTOFCORE_ROWS=10000000
# REPRO_OUTOFCORE_ROSTER=100000), plus the .txt tables.
bench-json:
	$(PYTHON) -m pytest benchmarks/test_ablation_hybrid_backend.py benchmarks/test_ablation_obs_overhead.py benchmarks/test_serve_sharded.py benchmarks/test_ablation_passjoin.py benchmarks/test_bench_outofcore.py -q -s --benchmark-disable

bench-paper:
	REPRO_PAPER_SCALE=1 $(PYTHON) -m pytest benchmarks/ --benchmark-only

report:
	$(PYTHON) -m repro.cli report --output REPORT.md

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/deduplicate_names.py
	$(PYTHON) examples/health_department_linkage.py 120
	$(PYTHON) examples/scaling_study.py 600
	$(PYTHON) examples/blocking_vs_filtering.py
	$(PYTHON) examples/incremental_updates.py 200 3

clean:
	rm -rf build dist src/*.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
