"""Paper Appendix Table 11: birthdates, k=1.

Paper finding: 8-digit dates over a 100-year window collide heavily
within one edit (7,899 DL Type 1 at n=5000) and the FBF filter passes
many candidates (355,860) — yet FDL/FPDL still deliver 30.8x/42.5x.
"""

from _common import paper_reference, protocol, save_result, table_n

from repro.data.datasets import dataset_for_family
from repro.eval.experiments import run_string_experiment
from repro.eval.tables import format_string_experiment
from repro.parallel.chunked import ChunkedJoin

PAPER_TABLE_A3 = paper_reference(
    "Appendix Table 11 — Bi, k=1, n=5000",
    ["Bi", "Type 1", "Type 2", "Time ms", "Speedup"],
    [
        ["DL", 7899, 0, 42121.0, 1.00],
        ["PDL", 7899, 0, 15786.8, 2.67],
        ["Jaro", 597466, 7, 13971.2, 3.01],
        ["Wink", 1470453, 7, 15673.6, 2.69],
        ["Ham", 6152, 3006, 3833.8, 10.99],
        ["FDL", 7899, 0, 1368.8, 30.77],
        ["FPDL", 7899, 0, 992.0, 42.46],
        ["FBF", 355860, 0, 711.4, 59.21],
        ["Gen", "", "", 1.0, 42121.00],
    ],
)


def test_tableA3_birthdates(benchmark):
    n = table_n()
    result = run_string_experiment("Bi", n, k=1, seed=193, protocol=protocol())
    save_result(
        "tableA3_birthdates",
        format_string_experiment(result) + "\n\n" + PAPER_TABLE_A3,
    )

    dl = result.row("DL")
    for m in ("PDL", "FDL", "FPDL"):
        assert (result.row(m).type1, result.row(m).type2) == (dl.type1, dl.type2)
    # Dates collide much more than SSNs within one edit.
    ssn = run_string_experiment(
        "SSN", n, k=1, seed=193, methods=("DL", "FBF"), protocol=protocol()
    )
    assert dl.type1 > ssn.row("DL").type1
    # ... and the structured digit distribution makes the FBF filter
    # pass far more candidates than on SSNs.
    assert result.row("FBF").match_count > ssn.row("FBF").match_count
    assert result.row("Ham").type2 > 0
    assert result.row("FPDL").speedup > result.row("PDL").speedup

    dp = dataset_for_family("Bi", n, 193)
    join = ChunkedJoin(dp.clean, dp.error, k=1, scheme_kind="numeric")
    benchmark(lambda: join.run("FPDL"))
