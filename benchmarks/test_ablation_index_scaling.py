"""Ablation: one-to-many search structures.

Four ways to answer "which indexed strings are within k edits of this
query?":

* **FBF index** (this paper's machinery): length buckets + vectorized
  signature filter + bit-parallel OSA verify;
* **trie** (the paper's ref [20] family): prefix-shared DP rows with
  prefix pruning — same OSA metric, identical answers;
* **BK-tree** (the classic metric tree): triangle-inequality pruning —
  requires a true metric, so it runs plain Levenshtein and misses
  transposed twins;
* **linear scan** with PDL (the no-index baseline).

Measured: ms/query across index sizes, plus the FBF index's scaling.
"""

import random

from _common import save_result

from repro.core.bktree import BKTree
from repro.core.index import FBFIndex
from repro.core.triejoin import TrieIndex
from repro.data.ssn import build_ssn_pool
from repro.distance.pruned import pdl
from repro.eval.tables import format_table
from repro.eval.timing import TimingProtocol, time_callable


def test_ablation_index_scaling(benchmark):
    rng = random.Random(11)
    sizes = (1000, 2000, 4000, 8000)
    pool = build_ssn_pool(max(sizes), rng)
    queries = rng.sample(pool, 100)
    protocol = TimingProtocol(runs=3)

    rows = []
    per_query = {}
    for size in sizes:
        subset = pool[:size]
        index = FBFIndex(subset, scheme="numeric", verifier="osa-bitparallel")
        index.search(subset[0], 1)  # pack outside the timed region

        def run(index=index):
            for q in queries:
                index.search(q, 1)

        timing, _ = time_callable(run, protocol)
        per_query[size] = timing.mean_ms / len(queries)
        rows.append([f"FBF index {size:,}", round(per_query[size], 4)])

    # Competing structures at the largest size.
    big = pool[: sizes[-1]]
    trie = TrieIndex(big)
    t_trie, _ = time_callable(
        lambda: [trie.search(q, 1) for q in queries], protocol
    )
    rows.append([f"trie {sizes[-1]:,}", round(t_trie.mean_ms / len(queries), 4)])
    bk = BKTree(big)
    t_bk, _ = time_callable(
        lambda: [bk.search(q, 1) for q in queries], protocol
    )
    rows.append(
        [f"bk-tree {sizes[-1]:,} (levenshtein)",
         round(t_bk.mean_ms / len(queries), 4)]
    )
    small = pool[: sizes[0]]
    t_scan, _ = time_callable(
        lambda: [[s for s in small if pdl(q, s, 1)] for q in queries], protocol
    )
    rows.append(
        [f"scan {sizes[0]:,} (PDL)", round(t_scan.mean_ms / len(queries), 4)]
    )
    table = format_table(
        ["structure", "ms/query"],
        rows,
        title="Ablation — one-to-many search structures (SSNs, k=1)",
    )
    save_result("ablation_index_scaling", table)

    # Answer equivalence: trie and FBF agree exactly (same metric).
    fbf_big = FBFIndex(big, scheme="numeric")
    for q in queries[:10]:
        assert trie.search(q, 1) == fbf_big.search(q, 1)
        # BK-tree on Levenshtein returns a subset (transpositions cost 2).
        assert set(bk.search(q, 1)) <= set(fbf_big.search(q, 1))

    # The FBF index beats a scalar scan by a wide margin at equal size.
    assert per_query[sizes[0]] < t_scan.mean_ms / len(queries) / 3
    # Growth stays roughly linear: 8x the data costs well under 24x.
    assert per_query[sizes[-1]] < 24 * per_query[sizes[0]]

    index = FBFIndex(pool[:2000], scheme="numeric")
    index.search(pool[0], 1)
    benchmark(lambda: index.search(queries[0], 1))
