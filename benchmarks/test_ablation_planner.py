"""Ablation: the join planner — plan picks by scale, and the payoff.

Two artefacts:

* the cost model's picks for FPDL (and the unprunable Jaro) at
  n = 100 / 1,000 / 10,000 on the Table-3 last-names family, showing
  the scalar -> vectorized -> index-backed progression (the PASS-JOIN
  partition index wins the index tier at this scale and k=1);
* a head-to-head at n = 10,000: the auto plan (partition-index
  candidate generation) against the forced all-pairs vectorized join, both warm
  (prepared state built outside the clock).  The index-backed plan must
  win — that reduction is the point of planning — and must return the
  identical match count.
"""

from _common import save_result

from repro.core.plan import JoinPlanner
from repro.data.datasets import dataset_for_family
from repro.eval.tables import format_table
from repro.eval.timing import TimingProtocol, time_callable

PICK_NS = (100, 1_000, 10_000)
HEAD_TO_HEAD_N = 10_000


def test_ablation_planner(benchmark):
    dp = dataset_for_family("LN", HEAD_TO_HEAD_N, seed=5)

    # -- plan picks by scale (plan() never builds state: slicing is free)
    pick_rows = []
    picks = {}
    for n in PICK_NS:
        p = JoinPlanner(dp.clean[:n], dp.error[:n], k=1)
        for method in ("FPDL", "Jaro"):
            plan = p.plan(method)
            picks[(n, method)] = (plan.generator.name, plan.backend.name)
            pick_rows.append(
                [f"{n:,}", method, plan.generator.name, plan.backend.name]
            )
    assert picks[(100, "FPDL")] == ("all-pairs", "scalar")
    assert picks[(1_000, "FPDL")] == ("all-pairs", "vectorized")
    assert picks[(10_000, "FPDL")] == ("pass-join", "vectorized")
    # Jaro bounds neither length nor signature bits: never pruned.
    for n in PICK_NS:
        assert picks[(n, "Jaro")][0] == "all-pairs"

    # -- head-to-head at n = 10,000, warm on both sides
    planner = JoinPlanner(dp.clean, dp.error, k=1)
    planner.prepare("vectorized")
    planner.passjoin_index()

    def auto_plan():
        return planner.run("FPDL")

    def forced_all_pairs():
        return planner.run("FPDL", generator="all-pairs", backend="vectorized")

    t_auto, r_auto = time_callable(auto_plan, TimingProtocol.QUICK)
    t_full, r_full = time_callable(forced_all_pairs, TimingProtocol.QUICK)

    product = HEAD_TO_HEAD_N * HEAD_TO_HEAD_N
    rows = [
        *pick_rows,
        [
            f"{HEAD_TO_HEAD_N:,}",
            "FPDL auto (pass-join)",
            f"{r_auto.pairs_compared:,} pairs verified",
            f"{t_auto.mean_ms:.0f} ms",
        ],
        [
            f"{HEAD_TO_HEAD_N:,}",
            "FPDL forced all-pairs",
            f"{product:,} pairs walked",
            f"{t_full.mean_ms:.0f} ms",
        ],
    ]
    table = format_table(
        ["n", "method / plan", "generator -> backend / work", "backend / time"],
        rows,
        title="Ablation — planner picks and payoff, LN k=1",
    )
    save_result("ablation_planner", table)

    assert r_auto.match_count == r_full.match_count
    assert r_auto.pairs_compared < 0.2 * product
    assert t_auto.mean_ms < t_full.mean_ms, (
        f"index-backed plan ({t_auto.mean_ms:.0f} ms) should beat "
        f"all-pairs ({t_full.mean_ms:.0f} ms) at n={HEAD_TO_HEAD_N:,}"
    )

    # Timing distribution: the planned join at the vectorized scale.
    small = JoinPlanner(dp.clean[:1_000], dp.error[:1_000], k=1)
    small.prepare("vectorized")
    small.index()
    benchmark(lambda: small.run("FPDL", generator="fbf-index"))
