"""Paper Appendix Table 9: first names, k=1, Jaro/Wink threshold 0.75.

Paper finding: the shortest strings give FBF its smallest (but still
>20x) DL speedup; first names are dense in near-duplicates, so every
method's Type 1 count is the highest of the six families.
"""

from _common import paper_reference, protocol, save_result, table_n

from repro.data.datasets import dataset_for_family
from repro.eval.experiments import run_string_experiment
from repro.eval.tables import format_string_experiment
from repro.parallel.chunked import ChunkedJoin

PAPER_TABLE_A1 = paper_reference(
    "Appendix Table 9 — FN, k=1, theta=0.75, n=5000",
    ["FN", "Type 1", "Type 2", "Time ms", "Speedup"],
    [
        ["DL", 6458, 0, 24081.4, 1.00],
        ["PDL", 6458, 0, 6257.0, 3.85],
        ["Jaro", 215874, 102, 9080.0, 2.65],
        ["Wink", 314994, 102, 10450.4, 2.30],
        ["Ham", 4539, 2972, 3000.8, 8.02],
        ["FDL", 6458, 0, 1102.0, 21.85],
        ["FPDL", 6458, 0, 1036.6, 23.23],
        ["FBF", 91072, 0, 996.2, 24.17],
        ["Gen", "", "", 0.6, 40135.67],
    ],
)


def test_tableA1_firstnames(benchmark):
    n = table_n()
    result = run_string_experiment("FN", n, k=1, seed=191, protocol=protocol())
    assert result.theta == 0.75  # the paper's FN-specific threshold
    save_result(
        "tableA1_firstnames",
        format_string_experiment(result) + "\n\n" + PAPER_TABLE_A1,
    )

    dl = result.row("DL")
    for m in ("PDL", "FDL", "FPDL"):
        assert (result.row(m).type1, result.row(m).type2) == (dl.type1, dl.type2)
    # Dense near-duplicate space: DL itself has many Type 1 hits, and
    # the FBF-only pass count is a large superset.
    ln = run_string_experiment(
        "LN", n, k=1, seed=191, methods=("DL",), protocol=protocol()
    )
    assert dl.type1 > ln.row("DL").type1
    assert result.row("FBF").match_count > dl.match_count
    assert result.row("Ham").type2 > 0
    assert result.row("FPDL").speedup > result.row("PDL").speedup

    dp = dataset_for_family("FN", n, 191)
    join = ChunkedJoin(dp.clean, dp.error, k=1, scheme_kind="alpha")
    benchmark(lambda: join.run("FPDL"))
