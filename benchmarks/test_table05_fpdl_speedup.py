"""Paper Table 5: FPDL's speedup over every non-filtered method, across
all six data families.

Paper finding: FPDL beats DL by 23x (FN) to 80x (Ad), growing with
average string length; it also beats PDL, Jaro, Wink and Ham on every
family (Ham only by 2.9x-4.7x, but with zero Type 2 errors instead of
thousands).
"""

from _common import paper_reference, protocol, save_result, table_n

from repro.eval.experiments import run_string_experiment
from repro.eval.scale import paper_scale
from repro.eval.tables import format_table

PAPER_TABLE_5 = paper_reference(
    "Table 5 — FPDL speedup vs non-filtered methods, n=5000",
    ["FPDL", "FN", "LN", "Bi", "SSN", "Ph", "Ad"],
    [
        ["DL", 23.23, 26.10, 42.46, 62.24, 75.00, 79.60],
        ["PDL", 6.04, 5.22, 15.91, 20.57, 22.63, 9.36],
        ["Jaro", 8.76, 9.52, 14.08, 18.91, 23.87, 20.64],
        ["Wink", 10.08, 11.06, 15.80, 20.89, 25.98, 21.56],
        ["Ham", 2.89, 3.00, 3.86, 4.21, 4.71, 3.26],
    ],
)

#: paper family order: shortest average strings on the left.
FAMILIES_BY_LENGTH = ("FN", "LN", "Bi", "SSN", "Ph", "Ad")
BASELINES = ("DL", "PDL", "Jaro", "Wink", "Ham")


def test_table05_fpdl_speedup(benchmark):
    n = table_n() if paper_scale() else min(table_n(), 300)
    results = {
        fam: run_string_experiment(
            fam,
            n,
            k=1,
            seed=105,
            protocol=protocol(),
            methods=BASELINES + ("FPDL",),
        )
        for fam in FAMILIES_BY_LENGTH
    }
    fpdl_time = {fam: r.row("FPDL").time_ms for fam, r in results.items()}
    rows = []
    speedups = {}
    for base in BASELINES:
        row: list[object] = [base]
        for fam in FAMILIES_BY_LENGTH:
            s = results[fam].row(base).time_ms / fpdl_time[fam]
            speedups[(base, fam)] = s
            row.append(round(s, 2))
        rows.append(row)
    table = format_table(
        ["FPDL", *FAMILIES_BY_LENGTH],
        rows,
        title=f"Table 5 reproduction — FPDL speedup vs baselines, n={n}",
    )
    save_result("table05_fpdl_speedup", table + "\n\n" + PAPER_TABLE_5)

    # FPDL beats every DP/similarity baseline on every family.  Hamming
    # is the exception in this engine: a vectorized byte-compare is
    # nearly free, so Ham runs neck-and-neck with FPDL here (the paper's
    # C build saw FPDL 2.9x-4.7x ahead) — but Ham pays for that speed
    # with thousands of Type 2 errors (Tables 1, 3, 4).
    for (base, fam), s in speedups.items():
        if base == "Ham":
            assert s > 0.4, (base, fam, s)
        else:
            assert s > 1.0, (base, fam, s)
    # The DL speedup grows with string length: the long addresses beat
    # the short names by a wide margin.  (Finer orderings — e.g. SSN vs
    # FN, 9 vs ~6 average characters — are within noise at reduced
    # scale and are not asserted.)
    assert speedups[("DL", "Ad")] > 2 * speedups[("DL", "FN")]

    # Benchmark: one representative FPDL run on the longest family.
    from repro.data.datasets import dataset_for_family
    from repro.parallel.chunked import ChunkedJoin

    dp = dataset_for_family("Ad", n, 105)
    join = ChunkedJoin(dp.clean, dp.error, k=1, scheme_kind="alnum")
    benchmark(lambda: join.run("FPDL"))
