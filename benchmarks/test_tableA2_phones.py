"""Paper Appendix Table 10: phone numbers, k=1.

Paper finding: 10-digit fixed-length strings give the second-best DL
speedup (FPDL 75.0x) and the best Gen ratio; DL itself has almost no
false positives (7) because random NANP numbers rarely collide within
one edit.
"""

from _common import paper_reference, protocol, save_result, table_n

from repro.data.datasets import dataset_for_family
from repro.eval.experiments import run_string_experiment
from repro.eval.tables import format_string_experiment
from repro.parallel.chunked import ChunkedJoin

PAPER_TABLE_A2 = paper_reference(
    "Appendix Table 10 — Ph, k=1, n=5000",
    ["Ph", "Type 1", "Type 2", "Time ms", "Speedup"],
    [
        ["DL", 7, 0, 63311.6, 1.00],
        ["PDL", 7, 0, 19102.6, 3.31],
        ["Jaro", 82748, 10, 20153.8, 3.14],
        ["Wink", 567118, 10, 21930.0, 2.89],
        ["Ham", 7, 2272, 3976.0, 15.92],
        ["FDL", 7, 0, 961.6, 65.84],
        ["FPDL", 7, 0, 844.2, 75.00],
        ["FBF", 61277, 0, 738.8, 85.70],
        ["Gen", "", "", 0.4, 158279.00],
    ],
)


def test_tableA2_phones(benchmark):
    n = table_n()
    result = run_string_experiment("Ph", n, k=1, seed=192, protocol=protocol())
    save_result(
        "tableA2_phones",
        format_string_experiment(result) + "\n\n" + PAPER_TABLE_A2,
    )

    dl = result.row("DL")
    for m in ("PDL", "FDL", "FPDL"):
        assert (result.row(m).type1, result.row(m).type2) == (dl.type1, dl.type2)
    # Random 10-digit numbers barely collide within one edit.
    assert dl.type1 < n // 20
    assert result.row("Ham").type2 > 0
    assert result.row("FPDL").speedup > result.row("Ham").speedup
    assert result.row("FBF").speedup >= result.row("FPDL").speedup * 0.8

    dp = dataset_for_family("Ph", n, 192)
    join = ChunkedJoin(dp.clean, dp.error, k=1, scheme_kind="numeric")
    benchmark(lambda: join.run("FPDL"))
