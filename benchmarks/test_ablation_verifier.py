"""Ablation: verifier choice in the one-to-many index — OSA vs Myers.

The paper verifies with PDL (banded OSA, transpositions = 1 edit).
Myers' bit-parallel Levenshtein is the other bitwise approach in the
literature: one word-op column per target character, but transpositions
cost 2.  This ablation measures query throughput of an
:class:`repro.core.index.FBFIndex` under both verifiers and quantifies
the recall cost of dropping transposition credit on transposition-heavy
errors.
"""

import random

from _common import save_result, table_n

from repro.core.index import FBFIndex
from repro.data.errors import EditOp, ErrorInjector
from repro.data.ssn import build_ssn_pool
from repro.eval.tables import format_table
from repro.eval.timing import TimingProtocol, time_callable


def test_ablation_verifier(benchmark):
    n = max(table_n(), 500)
    rng = random.Random(99)
    pool = build_ssn_pool(n, rng)
    # Transposition-only errors: the case that separates OSA from
    # Levenshtein semantics.
    injector = ErrorInjector(ops=[EditOp.TRANSPOSE])
    queries = [injector.inject(s, rng) for s in pool[:200]]
    protocol = TimingProtocol(runs=3)

    rows = []
    found = {}
    for verifier in ("osa", "osa-bitparallel", "myers"):
        index = FBFIndex(pool, scheme="numeric", verifier=verifier)
        index.search(pool[0], 1)  # pack buckets outside the timed region

        def run(index=index):
            hits = 0
            for qid, q in enumerate(queries):
                if qid in index.search(q, 1):
                    hits += 1
            return hits

        timing, hits = time_callable(run, protocol)
        found[verifier] = hits
        rows.append(
            [
                verifier,
                hits,
                len(queries),
                round(timing.mean_ms, 1),
                round(timing.mean_ms / len(queries), 3),
            ]
        )
    table = format_table(
        ["verifier", "recovered", "queries", "total ms", "ms/query"],
        rows,
        title=f"Ablation — index verifier on transposition errors, |index|={n}",
    )
    save_result("ablation_verifier", table)

    # Both OSA verifiers (the paper's metric) recover every transposed
    # twin at k=1 and agree exactly.
    assert found["osa"] == len(queries)
    assert found["osa-bitparallel"] == len(queries)
    # Myers counts a swap as two edits and recovers none at k=1.
    assert found["myers"] == 0

    index = FBFIndex(pool, scheme="numeric")
    index.search(pool[0], 1)
    benchmark(lambda: index.search(queries[0], 1))
