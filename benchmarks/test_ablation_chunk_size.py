"""Ablation: pair-chunk size in the vectorized engine.

The chunk bounds every NumPy temporary (the guides' cache-effects
advice): too small and per-chunk Python overhead dominates; too large
and the working set falls out of cache.  This ablation sweeps the chunk
across three orders of magnitude on a DL join — the method with the
heaviest per-pair arrays — and confirms results are chunk-invariant.
"""

from _common import save_result, table_n

from repro.data.datasets import dataset_for_family
from repro.eval.tables import format_table
from repro.eval.timing import TimingProtocol, time_callable
from repro.parallel.chunked import ChunkedJoin


def test_ablation_chunk_size(benchmark):
    n = min(table_n(), 400)
    dp = dataset_for_family("LN", n, seed=77)
    protocol = TimingProtocol(runs=3)

    rows = []
    counts = set()
    times = {}
    for chunk in (1 << 8, 1 << 12, 1 << 16, 1 << 20):
        join = ChunkedJoin(dp.clean, dp.error, k=1, scheme_kind="alpha",
                           chunk=chunk)
        timing, res = time_callable(lambda j=join: j.run("DL"), protocol)
        counts.add((res.match_count, res.diagonal_matches))
        times[chunk] = timing.mean_ms
        rows.append([f"2^{chunk.bit_length() - 1}", round(timing.mean_ms, 1)])
    table = format_table(
        ["chunk (pairs)", "DL ms"],
        rows,
        title=f"Ablation — chunk size, LN n={n}",
    )
    save_result("ablation_chunk_size", table)

    # Chunking is purely an execution detail: identical results.
    assert len(counts) == 1
    # Tiny chunks pay real per-chunk overhead.
    assert times[1 << 8] > times[1 << 16]

    join = ChunkedJoin(dp.clean, dp.error, k=1, scheme_kind="alpha")
    benchmark.pedantic(lambda: join.run("DL"), rounds=3, iterations=1)
