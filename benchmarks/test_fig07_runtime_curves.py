"""Paper Figure 7: runtime curves for all methods on last names.

Paper finding: every curve is quadratic in n, but DL grows fastest and
the FBF methods (FDL/FPDL/filter-only) slowest — "almost linear when
compared to DL in this context", sitting below Hamming.
"""

from _common import save_result

from repro.eval.figures import render_curve_figure
from repro.eval.tables import format_table


def test_fig07_runtime_curves(fig7_curve, benchmark):
    headers = ["n"] + list(fig7_curve.times_ms)
    rows = []
    for idx, n in enumerate(fig7_curve.ns):
        rows.append(
            [n, *(round(fig7_curve.times_ms[m][idx], 1) for m in fig7_curve.times_ms)]
        )
    table = format_table(
        headers,
        rows,
        title="Figure 7 reproduction — runtime (ms) by n, LN, k=1",
    )
    chart = render_curve_figure(
        fig7_curve,
        methods=["DL", "PDL", "Ham", "FPDL"],
        title="Figure 7 (log-y): DL quadratic vs near-flat FBF",
    )
    save_result("fig07_runtime_curves", table + "\n\n" + chart)

    at_max = {m: t[-1] for m, t in fig7_curve.times_ms.items()}
    # DL is the steepest of the edit-distance/filter curves.  Jaro and
    # Wink may run at DL's level in this engine (their greedy matching
    # vectorizes worse than the DP; the paper's C builds had them ~3x
    # under DL — see EXPERIMENTS.md D5) so they are bounded loosely.
    for m in ("PDL", "Ham", "FDL", "FPDL", "FBF"):
        assert at_max["DL"] > at_max[m], m
    assert max(at_max["Jaro"], at_max["Wink"]) < 2.0 * at_max["DL"]
    # The FBF-wrapped methods sit at the bottom with Hamming.  (In the
    # paper's C build FPDL beats Ham 3x; a vectorized byte-compare Ham
    # is nearly free, so here the two curves run together — see
    # EXPERIMENTS.md.)
    assert at_max["FPDL"] < at_max["Ham"] * 1.5
    assert at_max["FDL"] < at_max["PDL"]
    # Monotone growth in n for the quadratic baseline.
    dl = fig7_curve.times_ms["DL"]
    assert all(b > a for a, b in zip(dl, dl[1:]))

    # Benchmark a single mid-sweep DL point (the curve's dominant cost).
    from repro.data.datasets import dataset_for_family
    from repro.parallel.chunked import ChunkedJoin

    n = fig7_curve.ns[len(fig7_curve.ns) // 2]
    dp = dataset_for_family("LN", n, 700)
    join = ChunkedJoin(dp.clean, dp.error, k=1, scheme_kind="alpha")
    benchmark.pedantic(lambda: join.run("FPDL"), rounds=3, iterations=1)
