"""Ablation: popcount kernel choice.

The paper's Algorithm 6 uses Wegner's loop because FBF signatures of
short strings are sparse ("the loop only executes as many times as
there are ones").  This ablation measures every kernel on realistic
signature XORs (sparse) and on dense words, plus the NumPy batch kernel
that the vectorized engine actually uses.
"""

import random

import numpy as np
from _common import save_result

from repro.core.popcount import POPCOUNT_KERNELS, popcount_batch_u32
from repro.core.signatures import num_signature
from repro.data.ssn import build_ssn_pool
from repro.eval.tables import format_table
from repro.eval.timing import TimingProtocol, time_callable


def _signature_xors(n: int = 4096) -> list[int]:
    """Realistic filter operands: XORs of SSN signature pairs."""
    rng = random.Random(0)
    pool = build_ssn_pool(256, rng)
    sigs = [num_signature(s) for s in pool]
    return [
        sigs[rng.randrange(len(sigs))] ^ sigs[rng.randrange(len(sigs))]
        for _ in range(n)
    ]


def test_ablation_popcount(benchmark):
    sparse = _signature_xors()
    rng = random.Random(1)
    dense = [rng.getrandbits(32) for _ in range(len(sparse))]
    protocol = TimingProtocol(runs=5, drop_extremes=True)

    rows = []
    for name, fn in POPCOUNT_KERNELS.items():
        t_sparse, _ = time_callable(lambda f=fn: [f(x) for x in sparse], protocol)
        t_dense, _ = time_callable(lambda f=fn: [f(x) for x in dense], protocol)
        rows.append(
            [name, round(t_sparse.mean_ms, 2), round(t_dense.mean_ms, 2)]
        )
    arr = np.array(sparse, dtype=np.uint32)
    t_np, _ = time_callable(lambda: popcount_batch_u32(arr), protocol)
    rows.append(["numpy-batch", round(t_np.mean_ms, 3), ""])

    table = format_table(
        ["kernel", "sparse ms", "dense ms"],
        rows,
        title=f"Ablation — popcount kernels over {len(sparse)} words",
    )
    save_result("ablation_popcount", table)

    by_name = {r[0]: r for r in rows}
    mean_bits = sum(bin(x).count("1") for x in sparse) / len(sparse)
    dense_bits = sum(bin(x).count("1") for x in dense) / len(dense)
    # Signature XORs are markedly sparser than random words (Wegner's
    # premise): ~9-10 set bits (two 9-digit signatures) vs ~16.
    assert mean_bits < 0.75 * dense_bits
    # Wegner's data-dependence: sparse words are cheaper than dense.
    assert by_name["kernighan"][1] < by_name["kernighan"][2]
    # The batch kernel amortizes to far below any per-int Python kernel.
    assert by_name["numpy-batch"][1] < by_name["bit_count"][1]

    benchmark(lambda: popcount_batch_u32(arr))
