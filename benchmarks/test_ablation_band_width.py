"""Ablation: PDL's banded DP vs the full dynamic program.

PDL's two savings over DL are the 2k+1 band (fewer cells) and early
termination (fewer rows).  This ablation isolates the band: the
vectorized banded verifier vs the full-DP verifier over identical
candidate sets, across thresholds — wider bands should close the gap,
since the band covers more of the matrix as k grows.
"""

import numpy as np
from _common import save_result, table_n

from repro.data.datasets import dataset_for_family
from repro.distance.codec import encode_raw
from repro.distance.vectorized import osa_pairs, osa_within_k_pairs
from repro.eval.tables import format_table
from repro.eval.timing import TimingProtocol, time_callable
from repro.parallel.partition import iter_pair_blocks


def test_ablation_band_width(benchmark):
    n = min(table_n(), 350)
    dp = dataset_for_family("Ad", n, seed=21)  # longest strings: worst DP
    codes_l, len_l = encode_raw(dp.clean)
    codes_r, len_r = encode_raw(dp.error)
    blocks = list(iter_pair_blocks(n, n, 1 << 16))
    protocol = TimingProtocol(runs=3)

    rows = []
    for k in (1, 2, 3):
        def banded():
            total = 0
            for ii, jj in blocks:
                total += int(
                    osa_within_k_pairs(
                        codes_l, len_l, codes_r, len_r, ii, jj, k
                    ).sum()
                )
            return total

        def full():
            total = 0
            for ii, jj in blocks:
                d = osa_pairs(codes_l, len_l, codes_r, len_r, ii, jj)
                total += int((d <= k).sum())
            return total

        t_band, band_matches = time_callable(banded, protocol)
        t_full, full_matches = time_callable(full, protocol)
        assert band_matches == full_matches, k
        rows.append(
            [
                f"k={k}",
                round(t_full.mean_ms, 1),
                round(t_band.mean_ms, 1),
                round(t_full.mean_ms / t_band.mean_ms, 2),
            ]
        )
    table = format_table(
        ["threshold", "full DP ms", "banded ms", "band speedup"],
        rows,
        title=f"Ablation — banded vs full DP on addresses, n={n}",
    )
    save_result("ablation_band_width", table)

    speedups = [r[3] for r in rows]
    # The band pays off at every threshold on 25-char addresses...
    assert all(s > 1.5 for s in speedups)
    # ...and pays off most at the tightest threshold.
    assert speedups[0] >= speedups[-1]

    ii, jj = blocks[0]
    benchmark(
        lambda: osa_within_k_pairs(codes_l, len_l, codes_r, len_r, ii, jj, 1)
    )
