"""Paper Table 4: street addresses, k=1 — the paper's best FBF result.

Paper finding: addresses are the longest strings (up to 25 chars), so
DL's O(mn) cost is largest and FBF's constant-time filter shines: FDL
78.2x, FPDL 79.6x, FBF-only 81.2x over DL.
"""

from _common import paper_reference, protocol, save_result, table_n

from repro.data.datasets import dataset_for_family
from repro.eval.experiments import run_string_experiment
from repro.eval.tables import format_string_experiment
from repro.parallel.chunked import ChunkedJoin

PAPER_TABLE_4 = paper_reference(
    "Table 4 — Ad, k=1, n=5000",
    ["Ad", "Type 1", "Type 2", "Time ms", "Speedup"],
    [
        ["DL", 120, 0, 135098.8, 1.00],
        ["PDL", 120, 0, 15887.4, 8.50],
        ["Jaro", 103368, 0, 35034.8, 3.86],
        ["Wink", 192108, 0, 36587.8, 3.69],
        ["Ham", 69, 3444, 5537.8, 24.40],
        ["FDL", 120, 0, 1728.0, 78.18],
        ["FPDL", 120, 0, 1697.2, 79.60],
        ["FBF", 3452, 0, 1664.6, 81.16],
        ["Gen", "", "", 2.0, 67549.40],
    ],
)


def test_table04_addresses(benchmark):
    n = table_n()
    result = run_string_experiment("Ad", n, k=1, seed=104, protocol=protocol())
    save_result(
        "table04_addresses",
        format_string_experiment(result) + "\n\n" + PAPER_TABLE_4,
    )

    dl = result.row("DL")
    for m in ("PDL", "FDL", "FPDL"):
        assert (result.row(m).type1, result.row(m).type2) == (dl.type1, dl.type2)
    assert result.row("Ham").type2 > 0
    # Longest strings -> the largest FBF speedups of the string tables.
    assert result.row("FPDL").speedup > 20
    # The FBF filter is extremely precise on addresses (the paper saw
    # only 3,452 passes out of 25M pairs): the pass count stays within
    # a small multiple of the true matches.
    assert result.row("FBF").match_count < 5 * n

    dp = dataset_for_family("Ad", n, 104)
    join = ChunkedJoin(dp.clean, dp.error, k=1, scheme_kind="alnum")
    benchmark(lambda: join.run("FPDL"))
