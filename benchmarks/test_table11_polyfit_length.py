"""Paper Table 11: quadratic fits of the Figure 9 (length-filter) curves.

Paper finding: LFPDL's growth coefficient (3.41e-5) is ~27% below
FPDL's (4.67e-5, Table 9) — prefiltering by length shrinks even the
FBF stack's quadratic term; the bare length filter itself ("Len") is an
order of magnitude cheaper still.
"""

from _common import paper_reference, save_result

from repro.eval.polyfit import fit_curves
from repro.eval.tables import format_table

PAPER_TABLE_11 = paper_reference(
    "Table 11 — polyfit coefficients, length-filter stacks",
    ["", "LDL", "LPDL", "Len", "LFDL", "LFPDL", "LFil"],
    [
        ["a", 5.38e-4, 2.21e-4, 9.23e-6, 3.34e-5, 3.41e-5, 3.21e-5],
        ["b", 0.263, 0.119, 0.004, 0.012, 0.001, -0.003],
        ["c", -531.126, -244.743, -9.159, -10.796, 6.730, 14.420],
    ],
)


def test_table11_polyfit_length(fig9_curve, benchmark):
    fits = fit_curves(fig9_curve)
    methods = list(fig9_curve.times_ms)
    table = format_table(
        ["", *methods],
        [
            ["a", *(f"{fits[m].a:.3e}" for m in methods)],
            ["b", *(f"{fits[m].b:.3f}" for m in methods)],
            ["c", *(f"{fits[m].c:.3f}" for m in methods)],
        ],
        title="Table 11 reproduction — quadratic fits of the Figure 9 curves",
    )
    save_result("table11_polyfit_length", table + "\n\n" + PAPER_TABLE_11)

    # The combined stacks grow slower than the length-only stacks.
    assert fits["LFPDL"].a < fits["LPDL"].a
    assert fits["LFDL"].a < fits["LDL"].a
    # The paper's Section 6 comparison: LFPDL's quadratic term sits
    # below FPDL's (the length filter removes FindDiffBits calls).
    assert fits["LFPDL"].a < fits["FPDL"].a
    # The bare length filter is the cheapest curve of the family.
    assert fits["LF"].a == min(
        fits[m].a for m in ("LDL", "LPDL", "LF", "LFDL", "LFPDL", "LFBF")
    )

    benchmark.pedantic(lambda: fit_curves(fig9_curve), rounds=5, iterations=1)
