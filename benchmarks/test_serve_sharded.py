"""Ablation: sharded asyncio serving vs the blocking line loop.

The serving tentpole claims that putting the scatter/gather
``ShardedIndex`` behind the asyncio front-end buys real throughput even
on one core: the blocking JSON-lines loop answers a query stream one
scalar ``query()`` at a time, while the async server coalesces
concurrent connections into vectorized ``query_batch`` sweeps over the
shard rosters.  The win is the batching economics, not parallelism.

Two arms over one 10k last-name roster and the same query stream:

* ``blocking``  — single-shard ``serve_lines`` loop, one request per
  line (the deployment floor);
* ``sharded``   — 4-shard ``MatchService`` behind ``AsyncMatchServer``,
  64 concurrent client connections, per-request latency measured
  client-side.

Asserted: the sharded async arm clears 2x the blocking arm's QPS, its
client-observed p99 stays inside the stated budget, nothing is shed,
and both arms return identical answers.  The machine-readable artifact
is ``benchmarks/results/BENCH_serve_sharded.json``.

Scale with ``REPRO_SERVE_N`` / ``REPRO_SERVE_QUERIES`` (the committed
artifact uses 10000 / 600).
"""

import asyncio
import io
import json
import os
import random
import time

from _common import RESULTS_DIR, save_result

from repro.eval.tables import format_table
from repro.serve import AsyncMatchServer, MatchService, serve_lines

N_POPULATION = int(os.environ.get("REPRO_SERVE_N", "10000"))
N_QUERIES = int(os.environ.get("REPRO_SERVE_QUERIES", "600"))
N_SHARDS = 4
N_CONNECTIONS = 64
BATCH_WINDOW = 0.005
RUNS = 3
#: the acceptance bars stated in the issue
SPEEDUP_FLOOR = 2.0
P99_BUDGET_MS = 100.0


def _build_inputs():
    from repro.data.errors import inject_error
    from repro.data.names import build_last_name_pool

    rng = random.Random(4242)
    population = build_last_name_pool(N_POPULATION, rng)
    stream = [
        inject_error(rng.choice(population), rng) for _ in range(N_QUERIES)
    ]
    return population, stream


def _run_blocking(population, stream):
    """One pass of the single-shard JSON-lines loop; returns
    ``(wall_s, answers)``."""
    svc = MatchService(population, k=1, scheme="alpha", cache_size=0)
    lines = [json.dumps({"op": "query", "value": v}) for v in stream]
    svc.query_batch(stream[:1])  # pack outside the clock
    out = io.StringIO()
    t0 = time.perf_counter()
    serve_lines(svc, lines, out)
    wall = time.perf_counter() - t0
    answers = {}
    for line in out.getvalue().splitlines():
        res = json.loads(line)
        assert res["ok"], res
        answers.setdefault(res["value"], res["ids"])
    return wall, answers


async def _drive_clients(conns, stream):
    """Fan the stream over the open connections (sequential per
    connection); returns ``(latencies_s, answers)``."""
    slices = [stream[i :: len(conns)] for i in range(len(conns))]

    async def client(reader, writer, values):
        lat, ans = [], {}
        for v in values:
            t0 = time.perf_counter()
            writer.write(
                json.dumps({"op": "query", "value": v}).encode() + b"\n"
            )
            await writer.drain()
            res = json.loads(await reader.readline())
            lat.append(time.perf_counter() - t0)
            assert res["ok"], res
            ans.setdefault(res["value"], res["ids"])
        return lat, ans

    parts = await asyncio.gather(
        *(client(r, w, s) for (r, w), s in zip(conns, slices) if s)
    )
    latencies, answers = [], {}
    for lat, ans in parts:
        latencies.extend(lat)
        answers.update(ans)
    return latencies, answers


def _run_sharded(population, stream):
    """One timed pass through the asyncio front-end; returns
    ``(wall_s, p99_ms, shed, answers)``."""

    async def main():
        svc = MatchService(
            population, k=1, scheme="alpha", cache_size=0, shards=N_SHARDS
        )
        server = AsyncMatchServer(
            svc,
            max_inflight=2 * N_CONNECTIONS,
            max_batch=N_CONNECTIONS,
            batch_window=BATCH_WINDOW,
        )
        _, port = await server.start()
        # Persistent connections: a serving client keeps its socket
        # open, so setup stays outside the clock (the blocking arm
        # pays no transport at all).
        conns = [
            await asyncio.open_connection("127.0.0.1", port)
            for _ in range(N_CONNECTIONS)
        ]
        await _drive_clients(conns, stream[:N_CONNECTIONS])  # warm-up
        t0 = time.perf_counter()
        latencies, answers = await _drive_clients(conns, stream)
        wall = time.perf_counter() - t0
        for _, writer in conns:
            writer.close()
            await writer.wait_closed()
        await server.aclose()
        return wall, latencies, server.shed, answers

    wall, latencies, shed, answers = asyncio.run(main())
    latencies.sort()
    p99 = latencies[min(len(latencies) - 1, int(len(latencies) * 0.99))]
    return wall, p99 * 1e3, shed, answers


def test_serve_sharded_throughput(benchmark):
    population, stream = _build_inputs()

    t_block, ref_answers = min(
        (_run_blocking(population, stream) for _ in range(RUNS)),
        key=lambda r: r[0],
    )
    best = min(
        (_run_sharded(population, stream) for _ in range(RUNS)),
        key=lambda r: r[0],
    )
    t_shard, p99_ms, shed, shard_answers = best

    assert shard_answers == ref_answers
    assert shed == 0

    qps_block = N_QUERIES / t_block
    qps_shard = N_QUERIES / t_shard
    speedup = qps_shard / qps_block
    rows = [
        ["blocking x1", round(t_block * 1e3, 1), f"{qps_block:,.0f}", "-", "1.0x"],
        [
            f"sharded x{N_SHARDS} async",
            round(t_shard * 1e3, 1),
            f"{qps_shard:,.0f}",
            round(p99_ms, 1),
            f"{speedup:.1f}x",
        ],
    ]
    table = format_table(
        ["arm", "total ms", "queries/s", "p99 ms", "vs blocking"],
        rows,
        title=(
            f"Ablation — sharded serving "
            f"({N_POPULATION:,} roster, {N_QUERIES:,} queries, "
            f"{N_CONNECTIONS} connections, k=1)"
        ),
    )
    save_result("ablation_serve_sharded", table)

    RESULTS_DIR.mkdir(exist_ok=True)
    bench_path = RESULTS_DIR / "BENCH_serve_sharded.json"
    bench_path.write_text(
        json.dumps(
            {
                "workload": {
                    "family": "LN",
                    "roster": N_POPULATION,
                    "queries": N_QUERIES,
                    "k": 1,
                    "shards": N_SHARDS,
                    "connections": N_CONNECTIONS,
                    "p99_budget_ms": P99_BUDGET_MS,
                },
                "results": [
                    {
                        "arm": "blocking",
                        "wall_s": round(t_block, 4),
                        "qps": round(qps_block, 1),
                    },
                    {
                        "arm": "sharded-async",
                        "shards": N_SHARDS,
                        "wall_s": round(t_shard, 4),
                        "qps": round(qps_shard, 1),
                        "p99_ms": round(p99_ms, 2),
                        "shed": shed,
                        "speedup": round(speedup, 2),
                    },
                ],
            },
            indent=2,
        )
        + "\n"
    )
    print(f"[saved to {bench_path}]")

    assert speedup >= SPEEDUP_FLOOR, (
        f"sharded async serving is only {speedup:.1f}x the blocking loop "
        f"(claimed >= {SPEEDUP_FLOOR}x at roster={N_POPULATION})"
    )
    assert p99_ms <= P99_BUDGET_MS, (
        f"p99 {p99_ms:.1f}ms exceeds the {P99_BUDGET_MS}ms budget"
    )

    benchmark(lambda: _run_blocking(population, stream[:50]))
