"""Ablation: what does observability cost?

The stats layer promises a zero-overhead default: with no collector,
the scalar hot loop pays one attribute load and truthiness test per
pair and the vectorized engine pays a handful of no-op calls per
*chunk*.  With a collector, the scalar path runs the fully-instrumented
branch.  This ablation measures all three configurations on both
engines and asserts the promise — no-collector overhead within timing
noise — while reporting what turning the counters on actually costs.
"""

from _common import relative_overhead, save_result

from repro.core.join import match_strings
from repro.core.matchers import build_matcher
from repro.data.datasets import dataset_for_family
from repro.eval.tables import format_table
from repro.eval.timing import TimingProtocol
from repro.obs import StatsCollector
from repro.parallel.chunked import ChunkedJoin

#: generous noise floor — CI boxes jitter, and a real regression (the
#: instrumented branch running unconditionally) would show up as 2x+.
NOISE = 0.30


def test_ablation_obs_overhead(benchmark):
    dp = dataset_for_family("SSN", 400, seed=5)
    protocol = TimingProtocol(runs=5, drop_extremes=True)
    method = "FPDL"

    def scalar(collector=None):
        matcher = build_matcher(method, k=1, scheme="numeric", collector=collector)
        return match_strings(dp.clean, dp.error, matcher)

    def chunked(collector=None):
        join = ChunkedJoin(dp.clean, dp.error, k=1, scheme_kind="numeric")
        return join.run(method, collector=collector)

    rows = []
    overheads = {}
    for engine, run in (("scalar", scalar), ("vectorized", chunked)):
        base, noop, off_overhead = relative_overhead(
            run, lambda run=run: run(collector=None), protocol
        )
        _, counting, on_overhead = relative_overhead(
            run, lambda run=run: run(collector=StatsCollector()), protocol
        )
        overheads[engine] = (off_overhead, on_overhead)
        rows.append(
            [
                engine,
                round(base, 2),
                round(noop, 2),
                f"{100 * off_overhead:+.1f}%",
                round(counting, 2),
                f"{100 * on_overhead:+.1f}%",
            ]
        )

    table = format_table(
        ["engine", "plain ms", "no-op ms", "no-op ovh", "counting ms", "counting ovh"],
        rows,
        title=f"Ablation — collector overhead ({method}, 400x400 SSNs)",
    )
    save_result("ablation_obs_overhead", table)

    # The promise: a *disabled* collector is free on both engines.
    for engine, (off_overhead, _) in overheads.items():
        assert abs(off_overhead) <= NOISE, (
            f"{engine}: no-collector path is {100 * off_overhead:+.1f}% off "
            f"baseline — the default is supposed to be zero-overhead"
        )
    # Counting on the vectorized engine stays chunk-granular, so it must
    # also be near-free (the scalar engine's per-pair branch may not be).
    assert overheads["vectorized"][1] <= NOISE, (
        "vectorized counting overhead should be chunk-level noise, got "
        f"{100 * overheads['vectorized'][1]:+.1f}%"
    )

    benchmark(lambda: scalar(collector=StatsCollector()))
