"""Paper Table 14: street addresses with the length filter in the stack.

Paper finding: the combined filters lift the address speedup from 79.6x
(FPDL) to 130.8x (LFPDL); the length filter alone is blazing (569x) but
passes 9.6M of 12.5M pairs, so LDL/LPDL stay slow.
"""

from _common import paper_reference, protocol, save_result, table_n

from repro.data.datasets import dataset_for_family
from repro.eval.experiments import LENGTH_TABLE_METHODS, run_string_experiment
from repro.eval.tables import format_string_experiment
from repro.parallel.chunked import ChunkedJoin

PAPER_TABLE_14 = paper_reference(
    "Table 14 — Ad with length filter, k=1, n=5000",
    ["Ad", "Type1", "Type2", "Time ms", "Speedup"],
    [
        ["DL", 120, 0, 135098.8, 1.00],
        ["FPDL", 120, 0, 1697.2, 79.60],
        ["LDL", 120, 0, 48879.3, 2.76],
        ["LPDL", 120, 0, 14343.3, 9.42],
        ["LF", 9_623_583, 0, 237.3, 569.24],
        ["LFDL", 120, 0, 1164.0, 116.06],
        ["LFPDL", 120, 0, 1032.7, 130.83],
        ["LFBF", 3200, 0, 985.3, 137.11],
    ],
)


def test_table14_ad_length_filter(benchmark):
    n = table_n()
    result = run_string_experiment(
        "Ad", n, k=1, seed=114, methods=LENGTH_TABLE_METHODS, protocol=protocol()
    )
    save_result(
        "table14_ad_length_filter",
        format_string_experiment(result) + "\n\n" + PAPER_TABLE_14,
    )

    dl = result.row("DL")
    for m in ("FPDL", "LDL", "LPDL", "LFDL", "LFPDL"):
        assert (result.row(m).type1, result.row(m).type2) == (dl.type1, dl.type2)
    assert all(r.type2 == 0 for r in result.rows)
    # The paper's headline: combining both filters beats FBF alone.
    assert result.row("LFPDL").speedup > result.row("FPDL").speedup
    # The bare length filter is the fastest row but the loosest.
    lf = result.row("LF")
    assert lf.time_ms == min(r.time_ms for r in result.rows)
    assert lf.match_count > result.row("LFBF").match_count

    dp = dataset_for_family("Ad", n, 114)
    join = ChunkedJoin(dp.clean, dp.error, k=1, scheme_kind="alnum")
    benchmark(lambda: join.run("LFPDL"))
