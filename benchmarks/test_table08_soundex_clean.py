"""Paper Table 8: Soundex vs DL on clean (self-matched) names.

Paper finding: without injected errors both methods find all true
positives, isolating the false-positive comparison — Soundex still
declares 3.9x-21x more false matches than DL at k=1.
"""

from _common import paper_reference, protocol, save_result, table_n

from repro.data.datasets import dataset_for_family
from repro.eval.experiments import run_soundex_experiment
from repro.eval.tables import format_soundex_rows
from repro.parallel.chunked import ChunkedJoin

PAPER_TABLE_8 = paper_reference(
    "Table 8 — Soundex vs DL with clean data, n=5000",
    ["Clean", "TP", "FN", "FP", "TN", "Time ms"],
    [
        ["FN-DL", 5000, 0, 18268, 24_976_732, 24464],
        ["FN-SDX", 5000, 0, 70476, 24_924_524, 10936],
        ["LN-DL", 5000, 0, 1760, 24_993_240, 31586],
        ["LN-SDX", 5000, 0, 37654, 24_957_346, 11938],
    ],
)


def test_table08_soundex_clean(benchmark):
    n = table_n()
    rows = []
    for family in ("FN", "LN"):
        rows.extend(
            run_soundex_experiment(
                family, n, mode="clean", seed=108, protocol=protocol()
            )
        )
    save_result(
        "table08_soundex_clean",
        format_soundex_rows(rows, f"Table 8 reproduction — clean mode, n={n}")
        + "\n\n"
        + PAPER_TABLE_8,
    )

    by_label = {r.label: r for r in rows}
    for family in ("FN", "LN"):
        dl, sdx = by_label[f"{family}-DL"], by_label[f"{family}-SDX"]
        # Clean self-match: everything on the diagonal is found.
        assert dl.tp == n and dl.fn == 0
        assert sdx.tp == n and sdx.fn == 0
        # Soundex still over-matches.
        assert sdx.fp > dl.fp
    # Clean data also yields more DL false positives than the error run
    # did (the paper's Table 8 vs Table 7 observation) — both lists are
    # drawn from the same real-name pool, so near-duplicates abound.

    dp = dataset_for_family("FN", n, 108)
    join = ChunkedJoin(dp.clean, dp.clean, k=1, scheme_kind="alpha")
    benchmark(lambda: join.run("SDX"))
