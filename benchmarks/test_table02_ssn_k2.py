"""Paper Table 2: SSNs with the relaxed threshold k=2.

Paper finding: accuracy stays exact for the DL stacks (1,229 Type 1, 0
Type 2), but the FBF filter passes ~10.9x more candidates than at k=1,
so FDL/FPDL speedups shrink (14.2x/24.6x vs 49.8x/62.2x) while the
filter-only FBF time is unchanged.
"""

from _common import paper_reference, protocol, save_result, table_n

from repro.data.datasets import dataset_for_family
from repro.eval.experiments import run_string_experiment
from repro.eval.tables import format_string_experiment
from repro.parallel.chunked import ChunkedJoin

PAPER_TABLE_2 = paper_reference(
    "Table 2 — SSN, k=2, n=5000",
    ["SSN2", "Type 1", "Type 2", "Time ms", "Speedup"],
    [
        ["DL", 1229, 0, 51523.4, 1.00],
        ["PDL", 1229, 0, 22441.4, 2.30],
        ["Jaro", 93658, 0, 15473.6, 3.33],
        ["Wink", 239922, 0, 17120.0, 3.01],
        ["Ham", 1014, 0, 3518.4, 14.64],
        ["FDL", 1229, 0, 3625.6, 14.21],
        ["FPDL", 1229, 0, 2097.0, 24.57],
        ["FBF", 1344669, 0, 713.2, 72.24],
        ["Gen", "", "", 0.8, 64404.25],
    ],
)


def test_table02_ssn_k2(benchmark):
    n = table_n()
    r2 = run_string_experiment("SSN", n, k=2, seed=101, protocol=protocol())
    r1 = run_string_experiment(
        "SSN", n, k=1, seed=101, protocol=protocol(), methods=("DL", "FBF", "FPDL")
    )
    save_result(
        "table02_ssn_k2",
        format_string_experiment(r2) + "\n\n" + PAPER_TABLE_2,
    )

    dl = r2.row("DL")
    for m in ("PDL", "FDL", "FPDL"):
        assert (r2.row(m).type1, r2.row(m).type2) == (dl.type1, dl.type2)
    # Relaxed threshold admits more DL matches than k=1.
    assert dl.type1 >= r1.row("DL").type1
    # The filter passes far more candidates at k=2 ...
    assert r2.row("FBF").match_count > 3 * r1.row("FBF").match_count
    # ... so the verified stacks lose speedup relative to their k=1 runs.
    assert r2.row("FPDL").speedup < r1.row("FPDL").speedup
    # FPDL remains competitive with Hamming while keeping zero Type 2.
    assert r2.row("FPDL").time_ms < 3 * r2.row("Ham").time_ms
    assert r2.row("FPDL").type2 == 0

    dp = dataset_for_family("SSN", n, 101)
    join = ChunkedJoin(dp.clean, dp.error, k=2, scheme_kind="numeric")
    benchmark(lambda: join.run("FPDL"))
