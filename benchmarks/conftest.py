"""Benchmark-suite configuration and shared (expensive) fixtures.

The three curve-based artefacts (Figure 7, Table 9, Table 10) share one
runtime sweep, and (Figure 9, Table 11) share another; session-scoped
fixtures compute each sweep once per benchmark run.
"""

import sys
from pathlib import Path

import pytest

# Allow `import _common` from any invocation directory.
sys.path.insert(0, str(Path(__file__).resolve().parent))


@pytest.fixture(scope="session")
def fig7_curve():
    """The Figure 7 sweep: all unfiltered + FBF methods over n."""
    from _common import curve_protocol

    from repro.eval.curves import FIG7_METHODS, run_runtime_curve
    from repro.eval.scale import curve_sizes

    return run_runtime_curve(
        "LN",
        ns=curve_sizes(),
        methods=FIG7_METHODS,
        k=1,
        seed=700,
        protocol=curve_protocol(),
    )


@pytest.fixture(scope="session")
def fig9_curve():
    """The Figure 9 sweep: length-filter method combinations over n."""
    from _common import curve_protocol

    from repro.eval.curves import FIG9_METHODS, run_runtime_curve
    from repro.eval.scale import curve_sizes

    return run_runtime_curve(
        "LN",
        ns=curve_sizes(),
        methods=("DL", "FDL", "FPDL") + FIG9_METHODS,
        k=1,
        seed=900,
        protocol=curve_protocol(),
    )


@pytest.fixture(scope="session")
def ssn_curve():
    """The Figure 6 sweep: per-pair FBF costs on fixed-length SSNs."""
    from _common import curve_protocol

    from repro.eval.curves import run_runtime_curve
    from repro.eval.scale import curve_sizes

    return run_runtime_curve(
        "SSN",
        ns=curve_sizes(),
        methods=("DL", "FDL", "FPDL", "FBF"),
        k=1,
        seed=600,
        protocol=curve_protocol(),
    )
