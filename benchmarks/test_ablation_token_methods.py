"""Ablation: token-based methods on demographic strings.

The paper excludes token-based methods, citing Cohen et al. [14]:
"token-based methods do not perform well for this type of data".  This
ablation verifies the exclusion empirically: sweep each token
similarity's threshold on error-injected last names, find the loosest
threshold that still recovers >= 99% of true matches, and compare the
false positives that threshold admits against DL's at k=1.
"""

from _common import save_result, table_n

from repro.data.datasets import dataset_for_family
from repro.distance.tokens import cosine_qgrams, dice, jaccard
from repro.eval.tables import format_table
from repro.parallel.chunked import ChunkedJoin


def _sweep(similarity, dp, target_recall=0.99):
    """Loosest threshold retaining >= target recall, and its FPs."""
    n = dp.n
    scores = [
        [similarity(a, b) for b in dp.error] for a in dp.clean
    ]
    best = None
    for step in range(19, -1, -1):
        theta = step / 20
        tp = sum(1 for i in range(n) if scores[i][i] >= theta)
        if tp / n >= target_recall:
            fp = sum(
                1
                for i in range(n)
                for j in range(n)
                if i != j and scores[i][j] >= theta
            )
            best = (theta, tp, fp)
            break
    if best is None:  # even theta=0 misses matches (cannot happen: >=0)
        best = (0.0, n, n * n - n)
    return best


def test_ablation_token_methods(benchmark):
    n = min(table_n(), 250)  # scalar scoring is O(n^2) per method
    dp = dataset_for_family("LN", n, seed=88)
    join = ChunkedJoin(dp.clean, dp.error, k=1, scheme_kind="alpha")
    dl = join.run("DL")

    rows = [["DL (k=1)", "-", n, dl.off_diagonal_matches]]
    results = {}
    for label, fn in (
        ("jaccard 2-grams", jaccard),
        ("dice 2-grams", dice),
        ("cosine 2-grams", cosine_qgrams),
    ):
        theta, tp, fp = _sweep(fn, dp)
        results[label] = (theta, tp, fp)
        rows.append([label, f"theta={theta:g}", tp, fp])
    table = format_table(
        ["method", "threshold", "TP (of " + str(n) + ")", "Type 1"],
        rows,
        title=f"Ablation — token methods at recall>=99%, LN n={n}",
    )
    save_result("ablation_token_methods", table)

    # The paper's exclusion, reproduced: at any recall-preserving
    # threshold, every token method admits far more false positives
    # than edit distance.
    for label, (theta, tp, fp) in results.items():
        assert fp > 5 * max(dl.off_diagonal_matches, 1), label

    benchmark.pedantic(lambda: _sweep(jaccard, dp), rounds=1, iterations=1)
