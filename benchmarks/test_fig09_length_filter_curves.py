"""Paper Figure 9: runtime curves for length-filter and combined stacks.

Paper finding: LFPDL/LFDL (length filter in front of FBF) are the
fastest verified curves; plain length-filtered LDL/LPDL are the slowest
of the filtered family because the length filter alone passes most
pairs straight to the DP.
"""

from _common import save_result

from repro.eval.figures import render_curve_figure
from repro.eval.tables import format_table


def test_fig09_length_filter_curves(fig9_curve, benchmark):
    headers = ["n"] + list(fig9_curve.times_ms)
    rows = []
    for idx, n in enumerate(fig9_curve.ns):
        rows.append(
            [n, *(round(fig9_curve.times_ms[m][idx], 1) for m in fig9_curve.times_ms)]
        )
    table = format_table(
        headers,
        rows,
        title="Figure 9 reproduction — runtime (ms) by n, length-filter stacks, LN",
    )
    chart = render_curve_figure(
        fig9_curve,
        methods=["LDL", "LPDL", "LF", "LFPDL"],
        title="Figure 9 (log-y): length-only vs combined filter stacks",
    )
    save_result("fig09_length_filter_curves", table + "\n\n" + chart)

    at_max = {m: t[-1] for m, t in fig9_curve.times_ms.items()}
    # The combined stacks beat their FBF-only counterparts...
    assert at_max["LFPDL"] < at_max["FPDL"]
    assert at_max["LFDL"] < at_max["FDL"] * 1.2
    # ...and the length-only stacks are the slowest verified curves.
    assert at_max["LDL"] > at_max["LFDL"]
    assert at_max["LPDL"] > at_max["LFPDL"]
    # Bare DL tops everything.
    assert at_max["DL"] == max(at_max.values())

    # Benchmark one LFPDL point mid-sweep.
    from repro.data.datasets import dataset_for_family
    from repro.parallel.chunked import ChunkedJoin

    n = fig9_curve.ns[len(fig9_curve.ns) // 2]
    dp = dataset_for_family("LN", n, 900)
    join = ChunkedJoin(dp.clean, dp.error, k=1, scheme_kind="alpha")
    benchmark.pedantic(lambda: join.run("LFPDL"), rounds=3, iterations=1)
