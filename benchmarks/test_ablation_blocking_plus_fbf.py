"""Ablation: blocking, FBF filtering, and their combination.

The paper (Section 1): blocking drops true matches when the key is
dirty, and FBF "may increase performance in systems that both block and
use our filter as a wrapper".  This ablation measures four pipelines on
error-injected last names:

* exhaustive FPDL (the paper's default),
* standard blocking on a Soundex key, DL inside blocks,
* the same blocking with FBF-wrapped DL inside blocks,
* FBF-filtered join without blocking.

reporting pairs compared, wall time and recall against the positional
ground truth.
"""

from _common import save_result, table_n

from repro.core.join import match_strings
from repro.core.matchers import build_matcher
from repro.data.datasets import dataset_for_family
from repro.distance.soundex import soundex
from repro.eval.tables import format_table
from repro.eval.timing import TimingProtocol, time_callable
from repro.linkage.blocking import StandardBlocking
from repro.parallel.chunked import ChunkedJoin


def test_ablation_blocking_plus_fbf(benchmark):
    n = min(table_n(), 400)
    dp = dataset_for_family("LN", n, seed=55)
    protocol = TimingProtocol(runs=3)
    blocker = StandardBlocking(key=soundex)
    block_pairs = list(blocker.pairs(dp.clean, dp.error))

    def blocked(method: str):
        matcher = build_matcher(method, k=1, scheme="alpha")
        return match_strings(dp.clean, dp.error, matcher, pairs=block_pairs)

    join = ChunkedJoin(dp.clean, dp.error, k=1, scheme_kind="alpha")

    results = {}
    rows = []
    specs = [
        ("exhaustive FPDL", lambda: join.run("FPDL"), n * n),
        ("soundex blocking + DL", lambda: blocked("DL"), len(block_pairs)),
        ("soundex blocking + FDL", lambda: blocked("FDL"), len(block_pairs)),
        ("FBF filter only + PDL", lambda: join.run("FPDL"), n * n),
    ]
    for label, fn, pairs in specs:
        timing, res = time_callable(fn, protocol)
        recall = res.diagonal_matches / n
        results[label] = (res, timing)
        rows.append([label, pairs, round(timing.mean_ms, 1), f"{recall:.3f}"])
    table = format_table(
        ["pipeline", "pairs", "ms", "recall"],
        rows,
        title=f"Ablation — blocking vs FBF filtering, LN n={n}, k=1",
    )
    save_result("ablation_blocking_plus_fbf", table)

    # Blocking drops true matches (dirty keys)...
    blocked_res, _ = results["soundex blocking + DL"]
    assert blocked_res.diagonal_matches < n
    # ...while the safe filter keeps them all.
    full_res, _ = results["exhaustive FPDL"]
    assert full_res.diagonal_matches == n
    # FBF inside blocks: identical decisions to DL inside blocks (the
    # wrapper claim).  With only a few hundred blocked pairs both run
    # in single-digit milliseconds, so the timing comparison gets a
    # noise margin; the work reduction shows at scale (Tables 1-4).
    fdl_res, fdl_t = results["soundex blocking + FDL"]
    dl_res, dl_t = results["soundex blocking + DL"]
    assert (fdl_res.match_count, fdl_res.diagonal_matches) == (
        dl_res.match_count,
        dl_res.diagonal_matches,
    )
    assert fdl_t.mean_ms <= dl_t.mean_ms * 1.5

    benchmark(lambda: join.run("FPDL"))
