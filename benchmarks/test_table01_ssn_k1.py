"""Paper Table 1: accuracy and performance on SSNs, k=1.

Paper finding: all DL-wrapped stacks report identical Type 1/Type 2
(42/0); only Hamming misses matches; Jaro/Wink produce orders of
magnitude more false positives; FPDL is ~62x faster than DL and the
FBF-only filter ~72x.
"""

from _common import paper_reference, protocol, save_result, table_n

from repro.data.datasets import dataset_for_family
from repro.eval.experiments import run_string_experiment
from repro.eval.tables import format_string_experiment
from repro.parallel.chunked import ChunkedJoin

PAPER_TABLE_1 = paper_reference(
    "Table 1 — SSN, k=1, n=5000 (times on the authors' 2012 testbed)",
    ["SSN", "Type 1", "Type 2", "Time ms", "Speedup"],
    [
        ["DL", 42, 0, 52807.2, 1.00],
        ["PDL", 42, 0, 17449.2, 3.03],
        ["Jaro", 93658, 0, 16043.6, 3.29],
        ["Wink", 239922, 0, 17720.2, 2.98],
        ["Ham", 41, 2352, 3571.6, 14.79],
        ["FDL", 42, 0, 1060.8, 49.78],
        ["FPDL", 42, 0, 848.4, 62.24],
        ["FBF", 123318, 0, 729.0, 72.44],
        ["Gen", "", "", 0.6, 88012.00],
    ],
)


def test_table01_ssn_k1(benchmark):
    n = table_n()
    result = run_string_experiment("SSN", n, k=1, seed=101, protocol=protocol())
    save_result(
        "table01_ssn_k1",
        format_string_experiment(result) + "\n\n" + PAPER_TABLE_1,
    )

    dl = result.row("DL")
    # Identical accuracy for every DL-wrapped stack.
    for m in ("PDL", "FDL", "FPDL"):
        assert (result.row(m).type1, result.row(m).type2) == (dl.type1, dl.type2)
    # Only Hamming misses true matches.
    for r in result.rows:
        assert (r.type2 == 0) or (r.method == "Ham")
    # Jaro/Wink false-positive blowup.
    assert result.row("Jaro").type1 > 10 * max(dl.type1, 1)
    assert result.row("Wink").type1 >= result.row("Jaro").type1
    # FBF stacks dominate: faster than PDL and Ham, and DL by a wide margin.
    assert result.row("FPDL").speedup > result.row("PDL").speedup
    assert result.row("FPDL").speedup > result.row("Ham").speedup
    assert result.row("FPDL").speedup > 10
    assert result.row("FBF").speedup >= result.row("FPDL").speedup * 0.8
    # Signature generation is negligible next to the DL join (the
    # paper's Gen row is 5 orders of magnitude below DL; allow for
    # first-call warmup at reduced scale).
    assert result.gen_time_ms < dl.time_ms / 20

    # Headline method timing distribution for pytest-benchmark.
    dp = dataset_for_family("SSN", n, 101)
    join = ChunkedJoin(dp.clean, dp.error, k=1, scheme_kind="numeric")
    benchmark(lambda: join.run("FPDL"))
