"""Ablation: alphabetic signature occurrence depth (l) and indicator bits.

The paper uses l=2 words for names ("A two integer vector can record 2
occurrences").  More levels tighten the filter (repeated letters become
visible) at the cost of wider signatures; the "unused bits" indicator
extension adds information but also relaxes the safe threshold by its
slack.  This ablation measures the filter's pass count and the FPDL
join time across configurations — all of which must keep zero false
negatives.
"""

from _common import save_result, table_n

from repro.core.signatures import scheme_for
from repro.core.vectorized import fbf_candidates, signatures_for_scheme
from repro.data.datasets import dataset_for_family
from repro.distance.vectorized import osa_within_k_pairs
from repro.distance.codec import encode_raw
from repro.eval.tables import format_table
from repro.eval.timing import TimingProtocol, time_callable

import numpy as np


def test_ablation_signature_levels(benchmark):
    n = min(table_n(), 600)
    dp = dataset_for_family("LN", n, seed=42)
    codes_l, len_l = encode_raw(dp.clean)
    codes_r, len_r = encode_raw(dp.error)
    k = 1
    protocol = TimingProtocol(runs=3)

    configs = [
        ("alpha l=1", scheme_for("alpha", 1)),
        ("alpha l=2 (paper)", scheme_for("alpha", 2)),
        ("alpha l=3", scheme_for("alpha", 3)),
        ("alpha l=2 + indicators", scheme_for("alpha", 2, extended=True)),
    ]
    rows = []
    passes = {}
    for label, scheme in configs:
        sig_l = signatures_for_scheme(dp.clean, scheme)
        sig_r = signatures_for_scheme(dp.error, scheme)
        bound = scheme.safe_threshold(k)

        def run(sig_l=sig_l, sig_r=sig_r, bound=bound):
            ii, jj = fbf_candidates(sig_l, sig_r, bound)
            ok = osa_within_k_pairs(codes_l, len_l, codes_r, len_r, ii, jj, k)
            return ii, jj, ok

        timing, (ii, jj, ok) = time_callable(run, protocol)
        diagonal = int(((ii == jj) & ok).sum())
        passes[label] = len(ii)
        rows.append(
            [label, scheme.width * 4, len(ii), int(ok.sum()), diagonal,
             round(timing.mean_ms, 2)]
        )
    table = format_table(
        ["configuration", "bytes", "filter passes", "matches", "true", "ms"],
        rows,
        title=f"Ablation — signature depth/indicators, LN n={n}, k=1",
    )
    save_result("ablation_signature_levels", table)

    # Safety: every configuration recovers all n true matches.
    assert all(r[4] == n for r in rows)
    # Depth monotonicity: more occurrence levels never pass more pairs.
    assert passes["alpha l=2 (paper)"] <= passes["alpha l=1"]
    assert passes["alpha l=3"] <= passes["alpha l=2 (paper)"]
    # All configurations agree on the final match count (same verifier).
    assert len({r[3] for r in rows}) == 1

    scheme = scheme_for("alpha", 2)
    sig_l = signatures_for_scheme(dp.clean, scheme)
    sig_r = signatures_for_scheme(dp.error, scheme)
    benchmark(lambda: fbf_candidates(sig_l, sig_r, scheme.safe_threshold(k)))
