"""Ablation: the compiled kernel tier vs. the interpreted tiers.

The same dense FPDL last-names join through the full backend
trajectory — scalar reference, vectorized NumPy, hybrid shared-memory
pool, and the native compiled kernels — extending the
``BENCH_hybrid.json`` story with the fourth tier.

The scalar loop cannot survive the full product (per-pair Python at
n=1e4 is minutes), so it runs at a reduced ``scalar_n`` and its record
carries its own ``n``; equivalence at that scale is asserted against a
vectorized run on the same reduced inputs.  The three array tiers run
the full product and must agree exactly.

Writes ``BENCH_native.json``: one record per tier plus the headline
``speedup_native_vs_vectorized`` the CI smoke job pins at >= 2.0 on
the full workload.  Scale with ``REPRO_NATIVE_N`` (the committed
artifact uses 10000) and ``REPRO_NATIVE_WORKERS`` (default 4).

Skips (rather than silently benchmarking the fallback) when no
compiled provider loads.
"""

import json
import os

import pytest
from _common import RESULTS_DIR, save_result

from repro import native
from repro.core.plan import JoinPlanner
from repro.data.datasets import dataset_for_family
from repro.eval.tables import format_table
from repro.eval.timing import TimingProtocol, time_callable
from repro.parallel.shm import close_shared_pools

N = int(os.environ.get("REPRO_NATIVE_N", "10000"))
WORKERS = int(os.environ.get("REPRO_NATIVE_WORKERS", "4"))
SCALAR_N = min(max(N // 10, 200), 1500)


def _planner(left, right, *, workers=None):
    return JoinPlanner(left, right, k=1, workers=workers, collapse="off")


@pytest.mark.skipif(
    not native.available(), reason="no compiled kernel provider"
)
def test_ablation_native_tier(benchmark):
    dp = dataset_for_family("LN", N, seed=5)
    left, right = dp.clean, dp.error
    small = dataset_for_family("LN", SCALAR_N, seed=5)

    scalar_planner = _planner(small.clean, small.error)
    small_vec_planner = _planner(small.clean, small.error)
    vec_planner = _planner(left, right)
    hyb_planner = _planner(left, right, workers=WORKERS)
    nat_planner = _planner(left, right)

    def scalar():
        return scalar_planner.run(
            "FPDL", generator="all-pairs", backend="scalar"
        )

    def vectorized():
        return vec_planner.run(
            "FPDL", generator="all-pairs", backend="vectorized"
        )

    def hybrid():
        return hyb_planner.run(
            "FPDL", generator="all-pairs", backend="hybrid"
        )

    def compiled():
        return nat_planner.run(
            "FPDL", generator="all-pairs", backend="native"
        )

    t_sc, r_sc = time_callable(scalar, TimingProtocol(runs=1))
    t_vec, r_vec = time_callable(vectorized, TimingProtocol(runs=3))
    t_hyb, r_hyb = time_callable(hybrid, TimingProtocol(runs=3))
    t_nat, r_nat = time_callable(compiled, TimingProtocol(runs=3))

    # Exactness: the three full-product tiers agree with each other,
    # the scalar reference agrees with vectorized at its own scale.
    counts = {
        (r.match_count, r.diagonal_matches, r.verified_pairs)
        for r in (r_vec, r_hyb, r_nat)
    }
    assert len(counts) == 1, counts
    r_small = small_vec_planner.run(
        "FPDL", generator="all-pairs", backend="vectorized"
    )
    scalar_equivalent = (
        r_sc.match_count == r_small.match_count
        and r_sc.diagonal_matches == r_small.diagonal_matches
    )
    assert scalar_equivalent, (r_sc.match_count, r_small.match_count)

    product = len(left) * len(right)
    scalar_product = SCALAR_N * SCALAR_N
    records = []
    rows = []
    for label, timing, run_n, pairs, workers, matches in (
        ("scalar", t_sc, SCALAR_N, scalar_product, 1, r_sc.match_count),
        ("vectorized", t_vec, N, product, 1, r_vec.match_count),
        ("hybrid", t_hyb, N, product, WORKERS, r_hyb.match_count),
        ("native", t_nat, N, product, 1, r_nat.match_count),
    ):
        wall_s = timing.best_ms / 1000.0
        rows.append(
            [
                f"{label} (n={run_n})",
                round(timing.best_ms, 1),
                f"{pairs / wall_s:,.0f}",
            ]
        )
        records.append(
            {
                "backend": label,
                "n": run_n,
                "method": "FPDL",
                "workers": workers,
                "wall_s": round(wall_s, 4),
                "pairs_per_s": round(pairs / wall_s, 1),
                "matches": matches,
            }
        )
    speedup = round(t_vec.best_ms / t_nat.best_ms, 2)
    table = format_table(
        ["backend", "ms (best)", "pairs/s"],
        rows,
        title=(
            f"Ablation — FPDL tiers, LN n={N} "
            f"(scalar at n={SCALAR_N}), provider={native.kind()}, "
            f"native vs vectorized: {speedup}x"
        ),
    )
    save_result("ablation_native_tier", table)

    RESULTS_DIR.mkdir(exist_ok=True)
    bench_path = RESULTS_DIR / "BENCH_native.json"
    bench_path.write_text(
        json.dumps(
            {
                "workload": {
                    "family": "LN",
                    "n": N,
                    "scalar_n": SCALAR_N,
                    "method": "FPDL",
                    "k": 1,
                    "generator": "all-pairs",
                    "pairs": product,
                },
                "provider": native.kind(),
                "records": records,
                "scalar_equivalent": scalar_equivalent,
                "speedup_native_vs_vectorized": speedup,
            },
            indent=2,
        )
        + "\n"
    )
    print(f"[saved to {bench_path}]")

    # The issue's acceptance bar: >= 2x the pure-NumPy tier on the
    # full candidate+verify workload.
    if N >= 8000:
        assert speedup >= 2.0, (t_nat.best_ms, t_vec.best_ms)

    benchmark(compiled)


def teardown_module(module):
    close_shared_pools()
