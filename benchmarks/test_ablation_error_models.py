"""Ablation: error-model sensitivity.

FBF's zero-false-negative guarantee is distribution-free, but its
*selectivity* (how many pairs pass the filter) and the downstream Type 1
counts do depend on how errors look.  This ablation repeats the LN
experiment under four single-edit error models — uniform (the paper's),
QWERTY-adjacent, OCR glyph confusion, and transposition-only — and
checks that recall stays perfect for every model while selectivity
shifts.
"""

import random

from _common import save_result, table_n

from repro.data.errors import EditOp, ErrorInjector
from repro.data.names import build_last_name_pool
from repro.data.typo_models import keyboard_injector, ocr_injector
from repro.eval.tables import format_table
from repro.eval.timing import TimingProtocol, time_callable
from repro.parallel.chunked import ChunkedJoin


def test_ablation_error_models(benchmark):
    n = min(table_n(), 400)
    rng = random.Random(66)
    pool = build_last_name_pool(n, rng)
    protocol = TimingProtocol(runs=3)

    models = [
        ("uniform (paper)", ErrorInjector()),
        ("qwerty keyboard", keyboard_injector()),
        ("ocr confusion", ocr_injector()),
        ("transposition-only", ErrorInjector(ops=[EditOp.TRANSPOSE, EditOp.SUBSTITUTE])),
    ]
    rows = []
    passes = {}
    for label, injector in models:
        dirty = injector.inject_many(pool, random.Random(67))
        join = ChunkedJoin(pool, dirty, k=1, scheme_kind="alpha")
        fbf = join.run("FBF")
        timing, res = time_callable(lambda j=join: j.run("FPDL"), protocol)
        passes[label] = fbf.match_count
        rows.append(
            [
                label,
                fbf.match_count,
                res.match_count,
                res.diagonal_matches,
                round(timing.mean_ms, 1),
            ]
        )
    table = format_table(
        ["error model", "filter passes", "matches", "true", "FPDL ms"],
        rows,
        title=f"Ablation — error models, LN n={n}, k=1",
    )
    save_result("ablation_error_models", table)

    # The guarantee is model-independent: perfect recall everywhere.
    assert all(r[3] == n for r in rows)
    # Transposition-heavy errors are invisible to the filter (diff bits
    # 0), so that model passes at least as many diagonal pairs — total
    # pass counts stay within the same order of magnitude across models.
    assert max(passes.values()) < 10 * min(passes.values())

    join = ChunkedJoin(pool, keyboard_injector().inject_many(pool, random.Random(68)),
                       k=1, scheme_kind="alpha")
    benchmark(lambda: join.run("FPDL"))
