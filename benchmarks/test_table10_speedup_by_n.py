"""Paper Table 10: FPDL-over-DL speedup at every sweep size n.

Paper finding: the speedup is flat in n (27.3-28.6 across n=1,000 to
18,000 on last names), and the quadratic fits project ~28.3 for very
large n — FBF's advantage does not erode with scale.
"""

import statistics

from _common import paper_reference, save_result

from repro.eval.curves import speedup_by_n
from repro.eval.polyfit import fit_curves
from repro.eval.tables import format_table

PAPER_TABLE_10 = paper_reference(
    "Table 10 — FPDL/DL speedup by n (LN)",
    ["n", "speedup"],
    [
        [1000, 27.6],
        [5000, 27.9],
        [9000, 28.1],
        [13000, 28.4],
        [18000, 28.1],
    ],
)


def test_table10_speedup_by_n(fig7_curve, benchmark):
    table_rows = speedup_by_n(fig7_curve, "FPDL", "DL")
    table = format_table(
        ["n", "speedup"],
        [[n, round(s, 2)] for n, s in table_rows],
        title="Table 10 reproduction — FPDL/DL speedup by n",
    )
    fits = fit_curves(fig7_curve)
    asymptotic = fits["FPDL"].asymptotic_speedup_over(fits["DL"])
    table += f"\n\nprojected large-n speedup (a_DL / a_FPDL): {asymptotic:.1f}"
    save_result("table10_speedup_by_n", table + "\n\n" + PAPER_TABLE_10)

    speeds = [s for _, s in table_rows]
    # Real speedups at every n.
    assert all(s > 3 for s in speeds)
    # Stability: spread around the mean stays bounded (the paper sees
    # about +-2%; chunked NumPy overheads at small n warrant slack).
    mean = statistics.fmean(speeds)
    assert all(abs(s - mean) / mean < 0.6 for s in speeds)
    # The asymptotic projection agrees with the tail of the sweep.
    assert asymptotic > 3

    benchmark.pedantic(
        lambda: speedup_by_n(fig7_curve, "FPDL", "DL"), rounds=5, iterations=1
    )
