"""Ablation: execution engines — scalar, multiprocess, vectorized.

Same FPDL workload through the three drivers.  This quantifies the
calibration note in DESIGN.md: interpreted per-pair Python loses the
paper's constant factors; process parallelism buys back a core-count
multiple; NumPy vectorization buys back orders of magnitude.
All three must return identical counts (also pinned by the integration
tests).
"""

import os

from _common import save_result, table_n

from repro.core.join import match_strings
from repro.core.matchers import build_matcher
from repro.data.datasets import dataset_for_family
from repro.eval.tables import format_table
from repro.eval.timing import TimingProtocol, time_callable
from repro.parallel.chunked import ChunkedJoin
from repro.parallel.pool import parallel_match_strings


def test_ablation_engines(benchmark):
    n = min(table_n(), 300)
    dp = dataset_for_family("SSN", n, seed=33)
    protocol = TimingProtocol(runs=3)
    workers = min(4, os.cpu_count() or 1)

    def scalar():
        matcher = build_matcher("FPDL", k=1, scheme="numeric")
        return match_strings(dp.clean, dp.error, matcher)

    def pooled():
        return parallel_match_strings(
            dp.clean, dp.error, "FPDL", k=1, scheme_kind="numeric",
            workers=workers,
        )

    join = ChunkedJoin(dp.clean, dp.error, k=1, scheme_kind="numeric")

    def vectorized():
        return join.run("FPDL")

    t_scalar, r_scalar = time_callable(scalar, protocol)
    t_pool, r_pool = time_callable(pooled, protocol)
    t_vec, r_vec = time_callable(vectorized, protocol)

    rows = [
        ["scalar reference", round(t_scalar.mean_ms, 1), 1.0],
        [
            f"multiprocess x{workers}",
            round(t_pool.mean_ms, 1),
            round(t_scalar.mean_ms / t_pool.mean_ms, 2),
        ],
        [
            "vectorized (NumPy)",
            round(t_vec.mean_ms, 1),
            round(t_scalar.mean_ms / t_vec.mean_ms, 2),
        ],
    ]
    table = format_table(
        ["engine", "ms", "speedup vs scalar"],
        rows,
        title=f"Ablation — FPDL engines, SSN n={n}",
    )
    save_result("ablation_engines", table)

    # Identical answers.
    counts = {
        (r.match_count, r.diagonal_matches) for r in (r_scalar, r_pool, r_vec)
    }
    assert len(counts) == 1
    # Vectorization dominates everything else.
    assert t_vec.mean_ms < t_scalar.mean_ms / 5
    assert t_vec.mean_ms < t_pool.mean_ms

    benchmark(vectorized)
