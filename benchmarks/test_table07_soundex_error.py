"""Paper Table 7: Soundex vs DL on error-injected names.

Paper finding: under single-edit errors Soundex recovers fewer than half
the true matches (2,259/5,000 FN; 2,499/5,000 LN) with 6.4x-40x more
false positives than DL — the evidence that drove the switch to edit
distance.
"""

from _common import paper_reference, protocol, save_result, table_n

from repro.data.datasets import dataset_for_family
from repro.eval.experiments import run_soundex_experiment
from repro.eval.tables import format_soundex_rows
from repro.parallel.chunked import ChunkedJoin

PAPER_TABLE_7 = paper_reference(
    "Table 7 — Soundex vs DL with error injected, n=5000",
    ["Error", "TP", "FN", "FP", "TN", "Time ms"],
    [
        ["FN-DL", 5000, 0, 6458, 24_988_542, 24586],
        ["FN-SDX", 2259, 2741, 47137, 24_947_863, 10664],
        ["LN-DL", 5000, 0, 766, 24_994_234, 32308],
        ["LN-SDX", 2499, 2501, 30606, 24_964_394, 12344],
    ],
)


def test_table07_soundex_error(benchmark):
    n = table_n()
    rows = []
    for family in ("FN", "LN"):
        rows.extend(
            run_soundex_experiment(
                family, n, mode="error", seed=107, protocol=protocol()
            )
        )
    save_result(
        "table07_soundex_error",
        format_soundex_rows(rows, f"Table 7 reproduction — error mode, n={n}")
        + "\n\n"
        + PAPER_TABLE_7,
    )

    by_label = {r.label: r for r in rows}
    for family in ("FN", "LN"):
        dl, sdx = by_label[f"{family}-DL"], by_label[f"{family}-SDX"]
        # DL finds every single-edit twin; Soundex misses a large share.
        assert dl.fn == 0
        assert sdx.tp < 0.8 * n
        assert sdx.fn > 0
        # Soundex's false positives dwarf DL's.
        assert sdx.fp > 2 * max(dl.fp, 1)

    dp = dataset_for_family("LN", n, 107)
    join = ChunkedJoin(dp.clean, dp.error, k=1, scheme_kind="alpha")
    benchmark(lambda: join.run("SDX"))
