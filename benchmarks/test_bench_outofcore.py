"""Out-of-core streamed join vs the in-memory hybrid backend.

The big side is written to disk in slabs (never materialised in RAM),
then streamed through ``repro.stream.join_stream`` under a fixed memory
budget with disk spill and per-chunk checkpoints.  The claims asserted
at every scale:

* the streamed match set is exact — a pause/resume cycle produces a
  byte-identical spill and the funnel conserves across the whole run;
* peak RSS stays under the configured budget no matter how many rows
  stream past (the out-of-core claim), measured via ``VmHWM``
  immediately after the streamed run;
* streamed throughput holds at >= 0.8x the in-memory hybrid backend's
  pairs/s — the chunked scan pays for bounded memory with at most a
  small constant factor.

Artefacts: ``outofcore_stream.txt`` and the machine-readable
``BENCH_outofcore.json``.  The committed artifacts use
``REPRO_OUTOFCORE_ROWS=10000000 REPRO_OUTOFCORE_ROSTER=100000``
(1e7 x 1e5); CI smoke runs the 200,000 x 20,000 default.
"""

import json
import os
import random
import time

from _common import RESULTS_DIR, save_result

from repro.core.plan import JoinPlanner
from repro.data import build_last_name_pool, inject_error
from repro.eval.tables import format_table
from repro.obs import StatsCollector
from repro.stream import join_stream, read_spill

N_ROWS = int(os.environ.get("REPRO_OUTOFCORE_ROWS", "200000"))
RUNS = int(os.environ.get("REPRO_OUTOFCORE_RUNS", "2"))  # best-of-N
N_ROSTER = int(os.environ.get("REPRO_OUTOFCORE_ROSTER", "20000"))
BUDGET_MB = float(os.environ.get("REPRO_OUTOFCORE_BUDGET_MB", "1024"))
BASELINE_CAP = 1_000_000  # in-memory reference never loads more rows
RESUME_CAP = 50_000  # pause/resume equivalence scale
MUTATION = 0.25
SLAB = 500_000


def _peak_rss_mb() -> float | None:
    """High-water-mark resident set (``VmHWM``), in MB."""
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1]) / 1024.0
    except OSError:
        pass
    return None


def _write_big_side(path, roster, rows, rng) -> None:
    """Stream ``rows`` lines to disk in slabs; RAM stays O(SLAB)."""
    n = len(roster)
    with open(path, "w") as fh:
        remaining = rows
        while remaining:
            take = min(remaining, SLAB)
            fh.write(
                "".join(
                    f"{inject_error(roster[rng.randrange(n)], rng)}\n"
                    if rng.random() < MUTATION
                    else f"{roster[rng.randrange(n)]}\n"
                    for _ in range(take)
                )
            )
            remaining -= take


def test_bench_outofcore(benchmark, tmp_path):
    rng = random.Random(20120816)
    roster = build_last_name_pool(N_ROSTER, rng)
    big = tmp_path / "big.txt"
    _write_big_side(big, roster, N_ROWS, rng)

    # -- streamed run under the memory budget (best of RUNS) ----------------
    # Single-shot walls are noisy on a shared box; best-of-N is the
    # repo's timing convention (see _common.relative_overhead).
    spill = tmp_path / "matches.jsonl"
    stream_wall = None
    for _ in range(RUNS):
        obs = StatsCollector("stream")
        t0 = time.perf_counter()
        res = join_stream(
            big,
            roster,
            "FPDL",
            k=1,
            backend="hybrid",  # same backend as the in-memory baseline
            workers=2,
            memory_budget_mb=BUDGET_MB,
            spill=spill,
            checkpoint=tmp_path / "ck.json",
            collector=obs,
        )
        wall = time.perf_counter() - t0
        stream_wall = wall if stream_wall is None else min(stream_wall, wall)
    peak_mb = _peak_rss_mb()  # before anything in-memory inflates it

    assert res.completed
    assert not (tmp_path / "ck.json").exists()  # consumed on completion
    assert obs.conserved, "streamed funnel leaked pairs"
    assert obs.pairs_considered == N_ROWS * N_ROSTER
    assert res.spill_bytes == spill.stat().st_size
    if peak_mb is not None:
        assert peak_mb <= BUDGET_MB, (
            f"peak RSS {peak_mb:.0f} MB exceeds the {BUDGET_MB:.0f} MB budget"
        )

    pairs = N_ROWS * N_ROSTER
    stream_pps = pairs / stream_wall
    peak_note = f", peak {peak_mb:.0f} MB" if peak_mb is not None else ""
    print(
        f"streamed: {N_ROWS:,} x {N_ROSTER:,} in {stream_wall:.1f} s "
        f"({stream_pps / 1e6:.0f} M pairs/s, {res.chunks} chunks{peak_note})"
    )

    # -- pause/resume equivalence at a bounded scale ------------------------
    n_resume = min(N_ROWS, RESUME_CAP)
    small = tmp_path / "small.txt"
    with open(big) as src, open(small, "w") as dst:
        for _ in range(n_resume):
            dst.write(src.readline())
    join_stream(
        small, roster, "FPDL", k=1, chunk_rows=n_resume // 4,
        spill=tmp_path / "full.jsonl",
    )
    join_stream(
        small, roster, "FPDL", k=1, chunk_rows=n_resume // 4,
        spill=tmp_path / "part.jsonl",
        checkpoint=tmp_path / "rck.json", max_chunks=1,
    )
    resumed = join_stream(
        small, roster, "FPDL", k=1, chunk_rows=n_resume // 4,
        spill=tmp_path / "part.jsonl",
        checkpoint=tmp_path / "rck.json", resume=True,
    )
    resume_identical = (
        (tmp_path / "part.jsonl").read_bytes()
        == (tmp_path / "full.jsonl").read_bytes()
    )
    assert resumed.resumed_after == 0
    assert resume_identical, "resumed spill diverged from uninterrupted run"

    # ...and the spill agrees with the in-memory planner on those rows.
    small_rows = [s.strip() for s in open(small) if s.strip()]
    mem = JoinPlanner(small_rows, roster, k=1, collapse="off").run(
        "FPDL", record_matches=True
    )
    assert sorted(read_spill(tmp_path / "full.jsonl")) == sorted(mem.matches)

    # -- in-memory hybrid baseline (best of RUNS, warm pool) ----------------
    n_base = min(N_ROWS, BASELINE_CAP)
    with open(big) as fh:
        base_rows = [fh.readline().strip() for _ in range(n_base)]
    base_wall = None
    for _ in range(RUNS):
        obs_b = StatsCollector("hybrid")
        planner = JoinPlanner(
            base_rows, roster, k=1, collapse="off", workers=2
        )
        t0 = time.perf_counter()
        base = planner.run("FPDL", backend="hybrid", collector=obs_b)
        wall = time.perf_counter() - t0
        base_wall = wall if base_wall is None else min(base_wall, wall)
    base_pps = n_base * N_ROSTER / base_wall
    assert obs_b.conserved
    if n_base == N_ROWS:
        assert base.match_count == res.match_count

    ratio = stream_pps / base_pps
    assert ratio >= 0.8, (
        f"streamed {stream_pps / 1e6:.0f} M pairs/s is below 0.8x the "
        f"in-memory hybrid's {base_pps / 1e6:.0f} M pairs/s"
    )

    # -- artefacts -----------------------------------------------------------
    table = format_table(
        ["run", "rows", "wall s", "M pairs/s", "matches", "spill MB"],
        [
            [
                "streamed (budget %d MB)" % BUDGET_MB,
                f"{N_ROWS:,}",
                round(stream_wall, 1),
                round(stream_pps / 1e6, 1),
                f"{res.match_count:,}",
                round(res.spill_bytes / 1e6, 1),
            ],
            [
                "in-memory hybrid",
                f"{n_base:,}",
                round(base_wall, 1),
                round(base_pps / 1e6, 1),
                f"{base.match_count:,}",
                "-",
            ],
        ],
        title=(
            f"Out-of-core streamed join — LN roster n={N_ROSTER:,}, "
            f"FPDL k=1, ratio {ratio:.2f}x"
        ),
    )
    save_result("outofcore_stream", table)

    RESULTS_DIR.mkdir(exist_ok=True)
    bench_path = RESULTS_DIR / "BENCH_outofcore.json"
    bench_path.write_text(
        json.dumps(
            {
                "workload": {
                    "family": "LN",
                    "rows": N_ROWS,
                    "roster": N_ROSTER,
                    "mutation_rate": MUTATION,
                    "method": "FPDL",
                    "k": 1,
                    "memory_budget_mb": BUDGET_MB,
                    "timing": f"best of {RUNS}",
                },
                "streamed": {
                    "generator": res.generator,
                    "backend": res.backend,
                    "chunks": res.chunks,
                    "wall_s": round(stream_wall, 2),
                    "rows_per_s": round(N_ROWS / stream_wall, 1),
                    "pairs_per_s": round(stream_pps, 1),
                    "matches": res.match_count,
                    "spill_bytes": res.spill_bytes,
                    "peak_rss_mb": (
                        round(peak_mb, 1) if peak_mb is not None else None
                    ),
                },
                "baseline": {
                    "backend": "hybrid",
                    "rows": n_base,
                    "wall_s": round(base_wall, 2),
                    "pairs_per_s": round(base_pps, 1),
                    "matches": base.match_count,
                },
                "ratio_vs_hybrid": round(ratio, 3),
                "resume": {"rows": n_resume, "byte_identical": True},
            },
            indent=2,
        )
        + "\n"
    )
    print(f"[saved to {bench_path}]")

    # Timing distribution: a bounded streamed pass over the small file.
    benchmark(
        lambda: join_stream(
            small, roster, "FPDL", k=1, chunk_rows=n_resume // 2
        )
    )
