"""Paper Table 13: the census last-name length histogram.

This is the data-generation validation: the synthetic last-name pool
must reproduce the length distribution of the 151,670-name 2000 Census
file, because both the length filter's selectivity (Tables 12, 14) and
the DP costs depend on it.
"""

import random
from collections import Counter

from _common import paper_reference, save_result, table_n

from repro.data.names import PAPER_LN_LENGTH_HISTOGRAM, build_last_name_pool
from repro.eval.tables import format_table

PAPER_TABLE_13 = paper_reference(
    "Table 13 — Census last-name length counts (151,670 names)",
    ["Length", "Frequency"],
    [[L, PAPER_LN_LENGTH_HISTOGRAM[L]] for L in sorted(PAPER_LN_LENGTH_HISTOGRAM)],
)


def test_table13_length_histogram(benchmark):
    pool_size = max(4 * table_n(), 5000)
    pool = build_last_name_pool(pool_size, random.Random(113))
    counts = Counter(len(name) for name in pool)
    total = sum(PAPER_LN_LENGTH_HISTOGRAM.values())
    rows = []
    for L in sorted(PAPER_LN_LENGTH_HISTOGRAM):
        expected = PAPER_LN_LENGTH_HISTOGRAM[L] * pool_size / total
        rows.append([L, counts.get(L, 0), round(expected, 1)])
    table = format_table(
        ["Length", "generated", "target (scaled)"],
        rows,
        title=f"Table 13 reproduction — pool of {pool_size} synthetic last names",
    )
    save_result("table13_length_histogram", table + "\n\n" + PAPER_TABLE_13)

    # Distribution shape: every well-populated bucket within 25% of the
    # paper's (scaled) frequency; modal length preserved (6).
    for L in sorted(PAPER_LN_LENGTH_HISTOGRAM):
        expected = PAPER_LN_LENGTH_HISTOGRAM[L] * pool_size / total
        if expected >= 50:
            assert abs(counts.get(L, 0) - expected) <= 0.25 * expected, L
    assert counts.most_common(1)[0][0] == 6
    # Range preserved: nothing shorter than 2 or longer than 15.
    assert min(counts) >= 2 and max(counts) <= 15
    # Mean length near the paper's 6.89.
    mean = sum(L * c for L, c in counts.items()) / pool_size
    assert 6.3 <= mean <= 7.5

    benchmark.pedantic(
        lambda: build_last_name_pool(1000, random.Random(113)),
        rounds=3,
        iterations=1,
    )
