"""Ablation: filter ordering in the chain.

The paper always runs the length filter *before* FBF ("the length
filter was used as a wrapper for FBF as FBF is used as a wrapper for
DL") because the cheaper test should shield the dearer one.  This
ablation runs both orders through the scalar FilterChain with stats
collection and confirms the short-circuit arithmetic: same final
decisions, fewer expensive-test invocations with the cheap filter first.
"""

from _common import save_result, table_n

from repro.core.filters import FBFFilter, FilterChain, LengthFilter
from repro.core.signatures import scheme_for
from repro.data.datasets import dataset_for_family
from repro.eval.tables import format_table
from repro.eval.timing import TimingProtocol, time_callable


def test_ablation_filter_order(benchmark):
    n = min(table_n(), 400)
    dp = dataset_for_family("LN", n, seed=7)
    k = 1
    protocol = TimingProtocol(runs=3)

    def run_chain(order: str):
        if order == "length-first":
            chain = FilterChain(
                [LengthFilter(k), FBFFilter(k, scheme_for("alpha", 2))],
                collect_stats=True,
            )
        else:
            chain = FilterChain(
                [FBFFilter(k, scheme_for("alpha", 2)), LengthFilter(k)],
                collect_stats=True,
            )
        chain.prepare(dp.clean, dp.error)
        passed = 0
        for i in range(n):
            for j in range(n):
                if chain.passes(i, j):
                    passed += 1
        return chain, passed

    rows = []
    outcomes = {}
    fbf_tested = {}
    for order in ("length-first", "fbf-first"):
        timing, (chain, passed) = time_callable(lambda o=order: run_chain(o), protocol)
        stats = {s.name: s for s in chain.stats}
        fbf_tested[order] = stats["fbf"].tested
        outcomes[order] = passed
        rows.append(
            [
                order,
                stats["length"].tested,
                stats["fbf"].tested,
                passed,
                round(timing.mean_ms, 1),
            ]
        )
    table = format_table(
        ["order", "length tests", "fbf tests", "passed", "ms"],
        rows,
        title=f"Ablation — filter ordering, LN n={n}, k=1",
    )
    save_result("ablation_filter_order", table)

    # Order cannot change the decision (filters are pure predicates).
    assert outcomes["length-first"] == outcomes["fbf-first"]
    # Length-first shields FBF: far fewer signature comparisons.
    assert fbf_tested["length-first"] < fbf_tested["fbf-first"]

    benchmark.pedantic(lambda: run_chain("length-first"), rounds=3, iterations=1)
