"""Ablation: serving throughput — batched vs scalar, cache on vs off.

The serve layer's pitch is that one vectorized ``query_batch`` sweep
beats a loop of scalar ``query`` calls, because the scalar path pays
Python dispatch (signature, bucket walk, small DP calls) per query
while the batch amortises it into NumPy sweeps over the packed index —
the same economics that make the vectorized join engine win.  The LRU
cache adds a second multiplier on repetitive traffic.

Four arms over one 10k last-name population, identical query streams:

* ``scalar``          — ``query()`` per value, cache off (the floor);
* ``batched``         — one ``query_batch``, cache off (the tentpole
  claim: >= 3x the scalar throughput);
* ``scalar+cache``    — ``query()`` per value on a repetitive stream;
* ``batched+cache``   — ``query_batch`` on the repetitive stream, with
  the hit rate recorded.

Asserted: the batched arm clears 3x scalar throughput, answers are
identical across arms, and the cache arms actually hit.
"""

import random

from _common import save_result

from repro.eval.tables import format_table
from repro.eval.timing import TimingProtocol, time_callable
from repro.serve import MatchService

N_POPULATION = 10_000
N_QUERIES = 1_000
#: the tentpole throughput claim, asserted with margin below
SPEEDUP_FLOOR = 3.0


def _build_inputs():
    from repro.data.errors import inject_error
    from repro.data.names import build_last_name_pool

    rng = random.Random(9009)
    population = build_last_name_pool(N_POPULATION, rng)
    # Unique-ish stream: typo'd re-keys of random members plus misses.
    unique_stream = [
        inject_error(rng.choice(population), rng) for _ in range(N_QUERIES)
    ]
    # Repetitive stream: the same traffic shape clients actually send —
    # a small working set re-keyed over and over.
    working_set = unique_stream[:N_QUERIES // 10]
    repetitive_stream = [rng.choice(working_set) for _ in range(N_QUERIES)]
    return population, unique_stream, repetitive_stream


def test_serve_throughput(benchmark):
    population, unique_stream, repetitive_stream = _build_inputs()
    protocol = TimingProtocol(runs=5, drop_extremes=True)

    def service(cache: int) -> MatchService:
        return MatchService(
            population, k=1, scheme="alpha", cache_size=cache
        )

    def scalar(svc, stream):
        return [svc.query(v) for v in stream]

    def batched(svc, stream):
        return svc.query_batch(stream)

    arms = [
        ("scalar", scalar, 0, unique_stream),
        ("batched", batched, 0, unique_stream),
        ("scalar+cache", scalar, 4096, repetitive_stream),
        ("batched+cache", batched, 4096, repetitive_stream),
    ]
    rows = []
    timings = {}
    answers = {}
    for name, run, cache, stream in arms:
        svc = service(cache)
        svc.query_batch(stream[:1])  # pack + prepare outside the clock
        # Fresh cache per timed run would undo the warm-cache arm; one
        # warm-up pass then timed passes measures steady-state serving.
        run(svc, stream)
        timing, results = time_callable(lambda: run(svc, stream), protocol)
        timings[name] = timing.mean_ms
        answers[name] = [r.ids for r in results]
        hit_rate = svc.cache.stats()["hit_rate"]
        rows.append(
            [
                name,
                round(timing.mean_ms, 1),
                round(timing.mean_ms / len(stream) * 1e3, 1),
                f"{len(stream) / timing.mean_ms * 1e3:,.0f}",
                f"{timings['scalar'] / timing.mean_ms:.1f}x",
                f"{hit_rate:.2f}" if cache else "off",
            ]
        )

    table = format_table(
        ["arm", "total ms", "us/query", "queries/s", "vs scalar", "hit rate"],
        rows,
        title=(
            f"Ablation — serving throughput "
            f"({N_POPULATION:,} last names, {N_QUERIES:,} queries, k=1)"
        ),
    )
    save_result("ablation_serve_throughput", table)

    # Same stream, same answers, whichever path served them.
    assert answers["batched"] == answers["scalar"]
    assert answers["batched+cache"] == answers["scalar+cache"]

    speedup = timings["scalar"] / timings["batched"]
    assert speedup >= SPEEDUP_FLOOR, (
        f"batched query_batch is only {speedup:.1f}x scalar throughput "
        f"(claimed >= {SPEEDUP_FLOOR}x at n={N_POPULATION})"
    )
    # Steady-state repetitive traffic must be essentially all hits.
    assert timings["batched+cache"] <= timings["batched"]

    benchmark(lambda: batched(service(0), unique_stream))
