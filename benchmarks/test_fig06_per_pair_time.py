"""Paper Figure 6: average per-pair comparison time vs total comparisons.

Paper finding: the per-pair FBF cost is flat (~58 ns) regardless of how
many comparisons are performed; FPDL averages 67.9 ns and FDL 84.9 ns
per pair, against DL's 4,122.7 ns — the filter's cost does not grow
with workload, only the (rare) verification does.
"""

from _common import paper_reference, save_result

from repro.eval.curves import per_pair_times
from repro.eval.tables import format_table

PAPER_FIG_6 = paper_reference(
    "Figure 6 — average per-pair time (ns), SSN",
    ["method", "ns/pair"],
    [["FBF", 58.0], ["FPDL", 67.9], ["FDL", 84.9], ["DL", 4122.7]],
)


def test_fig06_per_pair_time(ssn_curve, benchmark):
    pp = per_pair_times(ssn_curve)
    rows = []
    for method in ("FBF", "FPDL", "FDL", "DL"):
        series = pp[method]
        rows.append(
            [
                method,
                *(round(ns, 1) for _, ns in series),
            ]
        )
    headers = ["method"] + [f"{pairs:,} pairs" for pairs, _ in pp["FBF"]]
    table = format_table(
        headers, rows, title="Figure 6 reproduction — per-pair time (ns) by workload"
    )
    save_result("fig06_per_pair_time", table + "\n\n" + PAPER_FIG_6)

    # Per-pair cost ordering at the largest workload: FBF <= FPDL <=
    # FDL << DL (generous margins: single-run points carry noise).
    last = {m: pp[m][-1][1] for m in ("FBF", "FPDL", "FDL", "DL")}
    assert last["FBF"] <= last["FPDL"] * 1.3
    assert last["FPDL"] <= last["FDL"] * 1.5
    assert last["DL"] > 5 * last["FDL"]
    # Stability: the FBF per-pair cost at the largest workload is within
    # 3x of the smallest (the paper reports near-perfect flatness; chunked
    # NumPy has some fixed overhead at small n).
    first_fbf = pp["FBF"][0][1]
    assert last["FBF"] < 3 * first_fbf

    # Benchmark one FBF-only join at the sweep's largest n.
    from repro.data.datasets import dataset_for_family
    from repro.parallel.chunked import ChunkedJoin

    n = ssn_curve.ns[-1]
    dp = dataset_for_family("SSN", n, 600)
    join = ChunkedJoin(dp.clean, dp.error, k=1, scheme_kind="numeric")
    benchmark(lambda: join.run("FBF"))
