"""Ablation: the zero-copy hybrid backend vs. pool and vector.

The same dense FPDL last-names join through the three scaled
drivers.  The `pool` backend pays scalar per-pair Python inside each
worker; the `vectorized` backend pays one interpreter; `hybrid`
publishes the encodings once through shared memory and runs the
vectorized chunk kernels inside persistent pool workers.

Besides the wall-clock table (``ablation_hybrid_backend.txt``) this
writes the machine-readable trajectory ``BENCH_hybrid.json`` — one
record per backend with n, method, wall-clock and pairs/s — and pins
the zero-copy claim: a second hybrid join on the same planner re-ships
no dataset bytes (pool reuse + cached shared segments).

Scale with ``REPRO_HYBRID_N`` (the committed artifact uses 10000) and
``REPRO_HYBRID_WORKERS`` (default 4).
"""

import json
import os

from _common import RESULTS_DIR, save_result

from repro.core.plan import JoinPlanner
from repro.data.datasets import dataset_for_family
from repro.eval.tables import format_table
from repro.eval.timing import TimingProtocol, time_callable
from repro.obs import StatsCollector
from repro.parallel.shm import close_shared_pools

N = int(os.environ.get("REPRO_HYBRID_N", "2000"))
WORKERS = int(os.environ.get("REPRO_HYBRID_WORKERS", "4"))


def _planner(left, right, *, workers=None, collector=None):
    # collapse="off": backend-vs-backend timing should not depend on
    # how many sampled last names happen to repeat.
    return JoinPlanner(
        left, right, k=1, workers=workers, collapse="off",
        collector=collector,
    )


def test_ablation_hybrid_backend(benchmark):
    dp = dataset_for_family("LN", N, seed=5)
    left, right = dp.clean, dp.error

    pool_planner = _planner(left, right, workers=WORKERS)
    vec_planner = _planner(left, right)
    hyb_planner = _planner(left, right, workers=WORKERS)

    def pooled():
        return pool_planner.run("FPDL", generator="all-pairs", backend="multiprocess")

    def vectorized():
        return vec_planner.run("FPDL", generator="all-pairs", backend="vectorized")

    def hybrid():
        return hyb_planner.run("FPDL", generator="all-pairs", backend="hybrid")

    # The pool backend verifies scalar pairs in Python — one timed run
    # is minutes at n=1e4, and repetition would not change the verdict.
    t_pool, r_pool = time_callable(pooled, TimingProtocol(runs=1))
    t_vec, r_vec = time_callable(vectorized, TimingProtocol(runs=3))
    t_hyb, r_hyb = time_callable(hybrid, TimingProtocol(runs=3))

    # Identical answers from all three backends.
    counts = {
        (r.match_count, r.diagonal_matches, r.verified_pairs)
        for r in (r_pool, r_vec, r_hyb)
    }
    assert len(counts) == 1, counts

    product = len(left) * len(right)
    records = []
    rows = []
    for label, timing, workers in (
        (f"multiprocess x{WORKERS}", t_pool, WORKERS),
        ("vectorized (NumPy)", t_vec, 1),
        (f"hybrid x{WORKERS}", t_hyb, WORKERS),
    ):
        wall_s = timing.best_ms / 1000.0
        rows.append(
            [
                label,
                round(timing.best_ms, 1),
                f"{product / wall_s:,.0f}",
                round(t_pool.best_ms / timing.best_ms, 2),
            ]
        )
        records.append(
            {
                "n": N,
                "method": "FPDL",
                "backend": label.split(" ")[0],
                "workers": workers,
                "wall_s": round(wall_s, 4),
                "pairs_per_s": round(product / wall_s, 1),
            }
        )
    table = format_table(
        ["backend", "ms (best)", "pairs/s", "speedup vs pool"],
        rows,
        title=f"Ablation — FPDL backends, LN n={N}, workers={WORKERS}",
    )
    save_result("ablation_hybrid_backend", table)

    RESULTS_DIR.mkdir(exist_ok=True)
    bench_path = RESULTS_DIR / "BENCH_hybrid.json"
    bench_path.write_text(
        json.dumps(
            {
                "workload": {
                    "family": "LN",
                    "n": N,
                    "method": "FPDL",
                    "k": 1,
                    "generator": "all-pairs",
                    "pairs": product,
                },
                "results": records,
            },
            indent=2,
        )
        + "\n"
    )
    print(f"[saved to {bench_path}]")

    # The issue's acceptance bars.
    assert t_hyb.best_ms * 2 <= t_pool.best_ms, (t_hyb.best_ms, t_pool.best_ms)
    if N >= 8000:
        assert t_hyb.best_ms * 1.5 <= t_vec.best_ms, (t_hyb.best_ms, t_vec.best_ms)

    benchmark(hybrid)


def test_hybrid_ships_datasets_once():
    """Two hybrid joins on one planner: the encodings cross the process
    boundary once; the second run pickles only task metadata."""
    dp = dataset_for_family("LN", min(N, 2000), seed=5)
    collector = StatsCollector("hybrid-bytes")
    planner = _planner(dp.clean, dp.error, workers=WORKERS, collector=collector)

    planner.run("FPDL", generator="fbf-index", backend="hybrid")
    data_bytes = planner.shared_datasets().bytes_shared
    after_first = dict(collector.counters)
    assert after_first["shm_bytes_shared"] >= data_bytes

    planner.run("FPDL", generator="fbf-index", backend="hybrid")
    shared_delta = collector.counters["shm_bytes_shared"] - after_first["shm_bytes_shared"]
    pickled_delta = collector.counters["shm_bytes_pickled"] - after_first["shm_bytes_pickled"]
    # No dataset re-publication: the second run shares only its own
    # candidate-index segments, and pickles far less than the encodings.
    assert shared_delta < data_bytes, (shared_delta, data_bytes)
    assert pickled_delta < data_bytes // 4, (pickled_delta, data_bytes)
    assert collector.counters["shm_pool_reuse_hits"] >= 1


def teardown_module(module):
    close_shared_pools()
