"""Paper Table 9: quadratic-fit coefficients of the Figure 7 curves.

Paper finding: fitting a*n^2 + b*n + c to each runtime curve puts the
FBF methods' growth rate (a ~ 4.7e-5) two orders of magnitude below
DL's (1.32e-3), with PDL, Jaro, Wink and Ham in between.
"""

from _common import paper_reference, save_result

from repro.eval.polyfit import fit_curves
from repro.eval.tables import format_table

PAPER_TABLE_9 = paper_reference(
    "Table 9 — polyfit coefficients (times in ms, authors' testbed)",
    ["", "DL", "PDL", "Jaro", "Wink", "Ham", "FDL", "FPDL", "Fil"],
    [
        ["a", 1.32e-3, 2.57e-4, 4.68e-4, 5.48e-4, 9.30e-5, 4.69e-5, 4.67e-5, 4.57e-5],
        ["b", -0.374, -0.080, -0.171, -0.496, -0.039, -0.008, -0.013, -0.012],
        ["c", 512.739, 127.316, 247.971, 1134.396, 71.392, 12.328, 28.035, 27.081],
    ],
)


def test_table09_polyfit(fig7_curve, benchmark):
    fits = fit_curves(fig7_curve)
    methods = list(fig7_curve.times_ms)
    table = format_table(
        ["", *methods],
        [
            ["a", *(f"{fits[m].a:.3e}" for m in methods)],
            ["b", *(f"{fits[m].b:.3f}" for m in methods)],
            ["c", *(f"{fits[m].c:.3f}" for m in methods)],
        ],
        title="Table 9 reproduction — quadratic fits of the Figure 7 curves",
    )
    save_result("table09_polyfit", table + "\n\n" + PAPER_TABLE_9)

    # Growth-rate ordering: FBF methods below PDL below DL.
    assert fits["FPDL"].a < fits["PDL"].a < fits["DL"].a
    assert fits["FDL"].a < fits["PDL"].a
    # FBF-only, FDL and FPDL cluster: their growth rates agree within
    # run-to-run noise (the verification of a k=1 candidate set is tiny).
    assert fits["FBF"].a <= fits["FDL"].a * 1.6
    # The headline gap: DL's quadratic coefficient is an order of
    # magnitude (the paper: two orders) above the FBF methods'.
    assert fits["DL"].a > 5 * fits["FPDL"].a
    # Fits actually describe the data: prediction error within 50% at
    # the largest point for the dominant DL curve.
    n_max = fig7_curve.ns[-1]
    predicted = fits["DL"].predict(n_max)
    actual = fig7_curve.times_ms["DL"][-1]
    assert abs(predicted - actual) < 0.5 * actual

    benchmark.pedantic(lambda: fit_curves(fig7_curve), rounds=5, iterations=1)
