"""Paper Table 6: the record-linkage experiment.

Paper finding: with the same deterministic point-and-threshold pipeline,
swapping DL for FDL/FPDL in the string-comparator slots gives 45x/48.9x
end-to-end speedup (FBF-only 50.4x) at identical decisions.
"""

from _common import paper_reference, protocol, rl_n, save_result

from repro.eval.experiments import run_rl_experiment
from repro.eval.tables import format_rl_experiment

PAPER_TABLE_6 = paper_reference(
    "Table 6 — RL experiment, 1000 clean vs 1000 error records",
    ["RL", "DL", "PDL", "FDL", "FPDL", "FBF", "Gen"],
    [
        ["Time ms", 13762.0, 3464.6, 305.6, 281.6, 273.2, 2.0],
        ["Speedup", 1.0, 4.0, 45.0, 48.9, 50.4, 6881.0],
    ],
)


def test_table06_record_linkage(benchmark):
    n = rl_n()
    result = run_rl_experiment(n, seed=106, protocol=protocol())
    save_result(
        "table06_record_linkage",
        format_rl_experiment(result) + "\n\n" + PAPER_TABLE_6,
    )

    dl = result.row("DL")
    # Identical linkage decisions for every DL-wrapped stack.
    for m in ("PDL", "FDL", "FPDL"):
        assert (result.row(m).type1, result.row(m).type2) == (dl.type1, dl.type2)
    # Zero missed links under single-edit corruption.
    assert dl.type2 == 0
    # The paper's speedup ordering: FBF >= FPDL > FDL > PDL > DL.
    assert result.row("FPDL").speedup > result.row("PDL").speedup > 1.0
    assert result.row("FDL").speedup > result.row("PDL").speedup
    assert result.row("FPDL").speedup > 10
    # Gen (signature prep) is a vanishing fraction of the DL run.
    assert result.gen_time_ms < dl.time_ms / 50

    # Benchmark the FPDL-configured engine end to end (smaller n: the
    # scalar engine is the unit under test here).
    import random

    from repro.linkage import RecordCorruptor, default_engine, generate_records

    rng = random.Random(106)
    records = generate_records(min(n, 150), rng)
    corrupted = RecordCorruptor().corrupt_many(records, rng)
    engine = default_engine("FPDL")
    benchmark(lambda: engine.link(records, corrupted))
