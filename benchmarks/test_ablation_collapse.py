"""Ablation: multiplicity-aware joins on duplicate-heavy data.

A Zipfian last-name roster (names drawn with replacement under a
1/rank weight — the shape real demographic columns take) self-joined
with FPDL k=1, across the four cells of the ablation grid:

* collapse off / self-join off — the full n x n product, the baseline
  every earlier benchmark measured;
* collapse off / self-join on — triangular enumeration only;
* collapse on / self-join off — unique-value collapse only;
* collapse on / self-join on — the planner's auto pick for this input.

Every cell must return the identical weighted match count (collapse and
triangular enumeration are execution strategy, not semantics), and the
fully-collapsed cell must enumerate at least 2x fewer pairs than the
baseline — on Zipfian data the unique count grows like n/log n, so the
reduction compounds quadratically.

``make bench-quick`` runs exactly this file as the CI smoke job.
"""

import random

from _common import save_result

from repro.core.plan import JoinPlanner
from repro.data.names import sample_zipfian_roster
from repro.eval.scale import scaled
from repro.eval.tables import format_table
from repro.eval.timing import TimingProtocol, time_callable

N = scaled(1_500, 10_000)
GRID = [
    ("off", False, "full product"),
    ("off", True, "triangle"),
    ("on", False, "collapse"),
    ("on", True, "collapse + triangle"),
]


def test_ablation_collapse(benchmark):
    roster = sample_zipfian_roster(N, random.Random(42))
    n_unique = len(set(roster))

    rows = []
    results = {}
    for collapse, self_join, label in GRID:
        planner = JoinPlanner(
            roster, roster, k=1, scheme="alpha",
            collapse=collapse, self_join=self_join,
        )
        t, r = time_callable(
            lambda p=planner: p.run("FPDL"), TimingProtocol.QUICK
        )
        results[(collapse, self_join)] = r
        rows.append(
            [
                label,
                collapse,
                "on" if self_join else "off",
                f"{r.pairs_compared:,}",
                f"{r.match_count:,}",
                f"{t.best_ms:.0f} ms",
            ]
        )

    table = format_table(
        ["cell", "collapse", "self-join", "pairs enumerated", "matches", "time"],
        rows,
        title=(
            f"Ablation — multiplicity grid, Zipfian LN self-join, "
            f"FPDL k=1, n={N:,} ({n_unique:,} unique)"
        ),
    )
    save_result("ablation_collapse", table)

    # Semantics: every cell returns the identical weighted match count.
    counts = {r.match_count for r in results.values()}
    assert len(counts) == 1, f"grid cells disagree on match count: {counts}"
    baseline = results[("off", False)]
    best = results[("on", True)]
    assert baseline.diagonal_matches == best.diagonal_matches

    # Payoff: the collapsed triangle enumerates >= 2x fewer pairs.
    assert best.pairs_compared * 2 <= baseline.pairs_compared, (
        f"collapsed self-join enumerated {best.pairs_compared:,} pairs; "
        f"expected <= half of the baseline's {baseline.pairs_compared:,}"
    )
    # And the collapsed run reports the unique-value workload it ran on.
    assert best.unique_left == n_unique

    # Timing distribution: the auto (fully collapsed) plan.
    auto = JoinPlanner(roster, roster, k=1, scheme="alpha")
    benchmark(lambda: auto.run("FPDL"))
