"""Paper Table 3: Census last names, k=1, Jaro/Wink threshold 0.8.

Paper finding: same accuracy identities as Table 1; variable-length
alphabetic data narrows the FBF gain (26.9x-27.3x vs 62x on SSNs) and
FPDL is about 3x faster than Hamming.
"""

from _common import paper_reference, protocol, save_result, table_n

from repro.data.datasets import dataset_for_family
from repro.eval.experiments import run_string_experiment
from repro.eval.tables import format_string_experiment
from repro.parallel.chunked import ChunkedJoin

PAPER_TABLE_3 = paper_reference(
    "Table 3 — LN, k=1, n=5000",
    ["LN", "Type 1", "Type 2", "Time ms", "Speedup"],
    [
        ["DL", 766, 0, 31073.2, 1.00],
        ["PDL", 766, 0, 6201.0, 5.01],
        ["Jaro", 18615, 44, 10707.2, 2.90],
        ["Wink", 47195, 28, 12242.6, 2.54],
        ["Ham", 559, 3011, 3344.0, 9.29],
        ["FDL", 766, 0, 1154.4, 26.92],
        ["FPDL", 766, 0, 1138.6, 27.29],
        ["FBF", 20174, 0, 1142.6, 27.20],
        ["Gen", "", "", 0.8, 38841.50],
    ],
)


def test_table03_lastnames(benchmark):
    n = table_n()
    result = run_string_experiment("LN", n, k=1, seed=103, protocol=protocol())
    save_result(
        "table03_lastnames",
        format_string_experiment(result) + "\n\n" + PAPER_TABLE_3,
    )

    dl = result.row("DL")
    for m in ("PDL", "FDL", "FPDL"):
        assert (result.row(m).type1, result.row(m).type2) == (dl.type1, dl.type2)
    # Ham misses shifted matches on variable-length names.
    assert result.row("Ham").type2 > 0
    # FBF-only passes a superset of the DL matches.
    assert result.row("FBF").match_count >= dl.match_count
    assert result.row("FBF").type2 == 0
    # FPDL clearly beats PDL and stays within range of the (vectorized,
    # nearly-free) Hamming baseline — which it dominates on accuracy.
    assert result.row("FPDL").speedup > result.row("PDL").speedup
    assert result.row("FPDL").time_ms < 2 * result.row("Ham").time_ms

    dp = dataset_for_family("LN", n, 103)
    join = ChunkedJoin(dp.clean, dp.error, k=1, scheme_kind="alpha")
    benchmark(lambda: join.run("FPDL"))
