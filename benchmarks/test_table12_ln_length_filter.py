"""Paper Table 12: last names with the length filter in the stack.

Paper finding: the combination (LFPDL, 36.0x) beats FBF alone (FPDL,
27.3x) by ~32%; length filtering alone barely helps DL (LDL 2.3x)
because it passes most name pairs; the combined filter cuts the pairs
reaching FindDiffBits (LFBF passes 12,735 vs FBF's 20,174).
"""

from _common import paper_reference, protocol, save_result, table_n

from repro.data.datasets import dataset_for_family
from repro.eval.experiments import LENGTH_TABLE_METHODS, run_string_experiment
from repro.eval.tables import format_string_experiment
from repro.parallel.chunked import ChunkedJoin

PAPER_TABLE_12 = paper_reference(
    "Table 12 — LN with length filter, k=1, n=5000",
    ["LN", "Type1", "Type2", "Time ms", "Speedup"],
    [
        ["DL", 766, 0, 31073.2, 1.00],
        ["FPDL", 766, 0, 1138.6, 27.29],
        ["LDL", 766, 0, 13599.0, 2.28],
        ["LPDL", 766, 0, 5666.7, 5.48],
        ["LF", 11_196_547, 0, 243.7, 127.52],
        ["LFDL", 766, 0, 890.7, 34.89],
        ["LFPDL", 766, 0, 863.0, 36.01],
        ["LFBF", 12_735, 0, 795.3, 39.07],
    ],
)


def test_table12_ln_length_filter(benchmark):
    n = table_n()
    result = run_string_experiment(
        "LN", n, k=1, seed=112, methods=LENGTH_TABLE_METHODS, protocol=protocol()
    )
    # The FBF-only pass count, for the LFBF-vs-FBF comparison.
    fbf = run_string_experiment(
        "LN", n, k=1, seed=112, methods=("FBF",), protocol=protocol()
    ).row("FBF")
    save_result(
        "table12_ln_length_filter",
        format_string_experiment(result) + "\n\n" + PAPER_TABLE_12,
    )

    dl = result.row("DL")
    for m in ("FPDL", "LDL", "LPDL", "LFDL", "LFPDL"):
        assert (result.row(m).type1, result.row(m).type2) == (dl.type1, dl.type2)
    # No filter stack loses matches.
    assert all(r.type2 == 0 for r in result.rows)
    # Combining filters beats FBF alone.
    assert result.row("LFPDL").speedup > result.row("FPDL").speedup
    # Length-only stacks are far weaker than FBF stacks.
    assert result.row("LDL").speedup < result.row("LFDL").speedup
    assert result.row("LPDL").speedup < result.row("LFPDL").speedup
    # The combined filter passes fewer pairs than FBF alone (the
    # paper's 12,735 vs 20,174).
    assert result.row("LFBF").match_count < fbf.match_count

    dp = dataset_for_family("LN", n, 112)
    join = ChunkedJoin(dp.clean, dp.error, k=1, scheme_kind="alpha")
    benchmark(lambda: join.run("LFPDL"))
