"""Ablation: sub-quadratic candidate generation (PASS-JOIN / prefix).

The same warm FPDL last-names join through the three exact index-backed
generators — ``pass-join`` (segment partition index), ``prefix``
(q-gram prefix + position filter) and ``fbf-index`` (signature probes
inside length windows) — plus the cost model's routing story:

* at ``k=1`` the partition probe touches a few hash buckets per window
  and the sampled collision count is small: auto must route to a
  partition generator and the forced run must beat the signature walk
  (>= 5x at the committed n = 100,000);
* at ``k=2`` the 2-3-character name segments lose their selectivity
  (~5e8 collisions at n = 1e5) and the sampled estimate prices that in:
  auto must route *away* from the partition indexes.  The blown-up runs
  themselves are never timed — that is the point of the cost model.

Artefacts: ``ablation_passjoin.txt`` and the machine-readable
``BENCH_passjoin.json`` (one record per generator with wall-clock,
emitted candidates and matches, plus the auto picks at k = 1 and 2).
The committed artifacts use ``REPRO_PASSJOIN_N=100000``; CI smoke runs
the default 10,000.  Matches are asserted identical across generators,
against the all-pairs reference up to n = 20,000, and the funnel
conserves for every forced plan.
"""

import json
import os

from _common import RESULTS_DIR, save_result

from repro.core.plan import JoinPlanner
from repro.data.datasets import dataset_for_family
from repro.eval.tables import format_table
from repro.eval.timing import TimingProtocol, time_callable
from repro.obs import StatsCollector

N = int(os.environ.get("REPRO_PASSJOIN_N", "10000"))
PARTITION = ("pass-join", "prefix")


def test_ablation_passjoin(benchmark):
    dp = dataset_for_family("LN", N, seed=5)
    left, right = dp.error, dp.clean
    product = len(left) * len(right)

    # -- cost-model routing at k=1 vs k=2 -----------------------------------
    picks = {}
    for k in (1, 2):
        p = JoinPlanner(left, right, k=k, collapse="off")
        plan = p.plan("FPDL")
        picks[k] = plan.generator.name
        print(f"k={k}: auto -> {plan.generator.name} ({plan.reason})")
    if N >= 10_000:
        assert picks[1] in PARTITION, picks
        assert picks[2] not in PARTITION, (
            f"k=2 collision blow-up not priced in: auto picked {picks[2]}"
        )

    # -- head-to-head at k=1, warm planner state ----------------------------
    planner = JoinPlanner(left, right, k=1, collapse="off")
    planner.prepare("vectorized")
    planner.index()
    planner.passjoin_index()
    planner.prefix_index()

    timings = {}
    results = {}
    funnels = {}
    for gen, runs in (("pass-join", 3), ("prefix", 1), ("fbf-index", 1)):
        c = StatsCollector(gen)

        def run(gen=gen):
            return planner.run("FPDL", generator=gen, backend="vectorized")

        timings[gen], results[gen] = time_callable(run, TimingProtocol(runs=runs))
        # One instrumented run for the funnel; counters, not the clock.
        r = planner.run(
            "FPDL", generator=gen, backend="vectorized", collector=c
        )
        assert c.conserved, f"{gen} leaked pairs"
        assert c.pairs_considered == product
        funnels[gen] = c.stages[gen].passed
        assert c.stages[gen].tested == product
        assert r.match_count == results[gen].match_count

    # Exact generators: identical match sets, zero false negatives.
    counts = {r.match_count for r in results.values()}
    assert len(counts) == 1, counts
    if N <= 20_000:
        ref = planner.run("FPDL", generator="all-pairs", backend="vectorized")
        assert ref.match_count == results["pass-join"].match_count

    t_pj = timings["pass-join"].best_ms
    t_fbf = timings["fbf-index"].best_ms
    if N >= 100_000:
        assert t_pj * 5 <= t_fbf, (
            f"pass-join ({t_pj:.0f} ms) must be >= 5x faster than "
            f"fbf-index ({t_fbf:.0f} ms) at n={N:,}"
        )
    elif N >= 10_000:
        assert t_pj < t_fbf, (t_pj, t_fbf)

    # -- artefacts -----------------------------------------------------------
    records = []
    rows = []
    for gen in ("pass-join", "prefix", "fbf-index"):
        timing = timings[gen]
        wall_s = timing.best_ms / 1000.0
        emitted = funnels[gen]
        rows.append(
            [
                gen,
                round(timing.best_ms, 1),
                f"{emitted:,}",
                f"{100.0 * emitted / product:.2f}%",
                round(t_fbf / timing.best_ms, 2),
            ]
        )
        records.append(
            {
                "n": N,
                "method": "FPDL",
                "k": 1,
                "generator": gen,
                "wall_s": round(wall_s, 4),
                "candidates": int(emitted),
                "candidate_fraction": round(emitted / product, 6),
                "matches": results[gen].match_count,
                "pairs_per_s": round(product / wall_s, 1),
            }
        )
    table = format_table(
        ["generator", "ms (best)", "candidates", "of product", "speedup vs fbf"],
        rows,
        title=f"Ablation — FPDL candidate generators, LN n={N}, k=1",
    )
    save_result("ablation_passjoin", table)

    RESULTS_DIR.mkdir(exist_ok=True)
    bench_path = RESULTS_DIR / "BENCH_passjoin.json"
    bench_path.write_text(
        json.dumps(
            {
                "workload": {
                    "family": "LN",
                    "n": N,
                    "method": "FPDL",
                    "k": 1,
                    "backend": "vectorized",
                    "pairs": product,
                },
                "auto_picks": {f"k={k}": name for k, name in picks.items()},
                "results": records,
            },
            indent=2,
        )
        + "\n"
    )
    print(f"[saved to {bench_path}]")

    # Timing distribution: the partition-index join at a bounded scale.
    small_n = min(N, 10_000)
    small = JoinPlanner(left[:small_n], right[:small_n], k=1, collapse="off")
    small.prepare("vectorized")
    small.passjoin_index()
    benchmark(lambda: small.run("FPDL", generator="pass-join"))
