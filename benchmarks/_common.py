"""Shared helpers for the benchmark harness.

Every ``test_table*`` / ``test_fig*`` file regenerates one table or
figure from the paper's evaluation:

* it runs the corresponding experiment at the configured scale
  (reduced by default; ``REPRO_PAPER_SCALE=1`` for paper sizes),
* prints and saves a paper-style rendering next to the paper's own
  numbers (``benchmarks/results/*.txt``; these files are the source for
  EXPERIMENTS.md),
* asserts the qualitative findings that must hold at any scale, and
* feeds the table's headline method to pytest-benchmark so
  ``pytest benchmarks/ --benchmark-only`` reports its timing
  distribution.
"""

from __future__ import annotations

from pathlib import Path

from repro.eval.scale import RL_N, TABLE_N, paper_scale, scaled
from repro.eval.timing import TimingProtocol, time_callable

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def table_n() -> int:
    """Sample size for the table experiments (paper: 5000)."""
    return scaled(TABLE_N["default"], TABLE_N["paper"])


def rl_n() -> int:
    """Record count for the RL experiment (paper: 1000)."""
    return scaled(RL_N["default"], RL_N["paper"])


def protocol() -> TimingProtocol:
    """Reduced runs by default; the paper's 5-run protocol at scale."""
    return TimingProtocol.PAPER_TABLES if paper_scale() else TimingProtocol.QUICK


def curve_protocol() -> TimingProtocol:
    return TimingProtocol.PAPER_CURVES if paper_scale() else TimingProtocol.QUICK


def save_result(name: str, text: str) -> None:
    """Persist one reproduced table and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[saved to {path}]")


def paper_reference(title: str, headers: list[str], rows: list[list[object]]) -> str:
    """Render the paper's own numbers for side-by-side comparison."""
    from repro.eval.tables import format_table

    return format_table(headers, rows, title=f"[paper] {title}")


def relative_overhead(
    baseline_fn, variant_fn, protocol: TimingProtocol
) -> tuple[float, float, float]:
    """``(baseline_ms, variant_ms, overhead)`` via best-of-N timing.

    ``overhead`` is ``variant/baseline - 1`` on each callable's *best*
    run — the right statistic for an is-it-free question, since one-off
    scheduling noise only ever inflates a run, never deflates it.
    """
    t_base, _ = time_callable(baseline_fn, protocol)
    t_var, _ = time_callable(variant_fn, protocol)
    base, var = t_base.best_ms, t_var.best_ms
    return base, var, (var / base - 1.0) if base > 0 else 0.0
