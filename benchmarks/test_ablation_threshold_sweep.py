"""Ablation: the full threshold trade-off behind Tables 1-4.

The paper reports one accuracy point per method at fixed thresholds.
This ablation sweeps them: k for the edit family, theta for Jaro — and
asserts the sweep-level version of the accuracy story: no Jaro
threshold simultaneously matches DL's Type 1 and Type 2 at k=1.
"""

from _common import save_result, table_n

from repro.data.datasets import dataset_for_family
from repro.eval.sweep import sweep_edit_threshold, sweep_similarity_threshold
from repro.eval.tables import format_table


def test_ablation_threshold_sweep(benchmark):
    n = min(table_n(), 300)
    dp = dataset_for_family("LN", n, seed=99)

    edit_points = sweep_edit_threshold(dp, "FPDL", ks=(0, 1, 2, 3))
    dl1 = sweep_edit_threshold(dp, "DL", ks=(1,))[0]
    thetas = tuple(t / 20 for t in range(12, 20))
    jaro_points = sweep_similarity_threshold(dp, "Jaro", thetas)

    rows = [["FPDL", f"k={int(p.threshold)}", p.type1, p.type2]
            for p in edit_points]
    rows += [["Jaro", f"theta={p.threshold:g}", p.type1, p.type2]
             for p in jaro_points]
    table = format_table(
        ["method", "threshold", "Type 1", "Type 2"],
        rows,
        title=f"Ablation — threshold sweeps, LN n={n}",
    )
    save_result("ablation_threshold_sweep", table)

    # Edit thresholds: k=0 misses everything injected; k>=1 full recall.
    assert edit_points[0].type2 == n
    assert edit_points[1].type2 == 0
    # Type 1 grows monotonically with k.
    type1s = [p.type1 for p in edit_points]
    assert type1s == sorted(type1s)
    # The Jaro trade-off never dominates DL at k=1 on both axes.
    for p in jaro_points:
        assert p.type1 > dl1.type1 or p.type2 > dl1.type2

    benchmark.pedantic(
        lambda: sweep_similarity_threshold(dp, "Jaro", (0.8,)),
        rounds=3,
        iterations=1,
    )
